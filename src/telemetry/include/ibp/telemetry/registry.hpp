#pragma once

// Process-wide metrics plane (one registry per simulated cluster).
//
// Every subsystem publishes named values under a stable dotted namespace
// ("mpi.rendezvous_bytes", "regcache.hits", "hca.att_misses", ...). Two
// publication styles coexist behind one name table:
//
//   * owned counters — a Counter handle resolved once, bumped on the hot
//     path with a single add (satellite layers like the MPI profiler);
//   * probes — pull-based contributors that read a subsystem's existing
//     stats struct at snapshot time (zero cost between snapshots). Many
//     probes may share one metric name; their values sum. A ProbeHandle
//     is RAII: when its owner dies (a rank's Comm, a RankEnv's RegCache)
//     the probe's final value is latched into the slot's base, so
//     snapshots taken after teardown still see the totals.
//
// Snapshots are dense value vectors over the registry's name table —
// allocation-light, O(1) per metric — and diffable (MetricsDelta), which
// is how benches report per-phase deltas exactly like the paper's
// mpiP-style communication/computation split.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ibp/common/stats.hpp"
#include "ibp/common/types.hpp"

namespace ibp::telemetry {

class MetricsRegistry;

/// Cheap handle to an owned metric slot. Value-semantic; resolves once,
/// adds in O(1) with no name lookup.
class Counter {
 public:
  Counter() = default;
  void add(double delta = 1.0);
  bool valid() const { return reg_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* reg, std::size_t slot) : reg_(reg), slot_(slot) {}
  MetricsRegistry* reg_ = nullptr;
  std::size_t slot_ = 0;
};

/// RAII registration of a pull-based metric contributor. Destruction (or
/// release()) reads the probe one last time and folds the value into the
/// slot's base, so the metric survives its publisher.
class ProbeHandle {
 public:
  ProbeHandle() = default;
  ProbeHandle(ProbeHandle&& o) noexcept { *this = std::move(o); }
  ProbeHandle& operator=(ProbeHandle&& o) noexcept;
  ProbeHandle(const ProbeHandle&) = delete;
  ProbeHandle& operator=(const ProbeHandle&) = delete;
  ~ProbeHandle() { release(); }

  /// Latch the probe's current value and unregister it.
  void release();

 private:
  friend class MetricsRegistry;
  ProbeHandle(MetricsRegistry* reg, std::size_t slot, std::uint64_t id)
      : reg_(reg), slot_(slot), id_(id) {}
  MetricsRegistry* reg_ = nullptr;
  std::size_t slot_ = 0;
  std::uint64_t id_ = 0;
};

class MetricsSnapshot;
struct MetricsDelta;
MetricsDelta diff(const MetricsSnapshot& before, const MetricsSnapshot& after);

/// Point-in-time copy of every metric value. Keeps the registry's name
/// table alive, so a snapshot outlives the registry that produced it.
class MetricsSnapshot {
 public:
  std::size_t size() const { return values_.size(); }
  std::string_view name(std::size_t i) const { return (*names_)[i]; }
  double value(std::size_t i) const { return values_[i]; }

  /// Value by metric name; 0.0 for an unknown name.
  double value_of(std::string_view name) const;

 private:
  friend class MetricsRegistry;
  friend MetricsDelta diff(const MetricsSnapshot&, const MetricsSnapshot&);
  std::shared_ptr<const std::deque<std::string>> names_;
  std::vector<double> values_;
};

/// Difference between two snapshots of the same registry: one entry per
/// metric whose value changed (plus metrics that only exist in `after`).
struct MetricsDelta {
  struct Entry {
    std::string_view name;  // backed by the snapshots' shared name table
    double before = 0.0;
    double after = 0.0;
    double delta() const { return after - before; }
  };
  std::vector<Entry> entries;
  // Keeps the name table the entries point into alive.
  std::shared_ptr<const std::deque<std::string>> names;

  bool empty() const { return entries.empty(); }
  /// Delta by metric name; 0.0 for an unchanged/unknown metric.
  double delta_of(std::string_view name) const;
};

/// Diff two snapshots (before → after) of the same registry.
MetricsDelta diff(const MetricsSnapshot& before, const MetricsSnapshot& after);

class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolve (creating if needed) the owned slot `name`.
  Counter counter(std::string_view name);

  /// One-shot add to `name`'s base value.
  void add(std::string_view name, double delta);

  /// Register a pull-based contributor to `name`. Multiple probes on one
  /// name sum. The returned handle latches the final value on release.
  [[nodiscard]] ProbeHandle probe(std::string_view name,
                                  std::function<double()> fn);

  /// Register `alias_name` as a second name for `name`'s slot, so
  /// existing consumers of a renamed metric keep resolving: counters,
  /// adds, probes and value() through either name hit one slot.
  /// Snapshots list only the canonical name (aliases are not rows, so
  /// values are never double-counted). Re-aliasing to the same target is
  /// a no-op; aliasing an existing distinct metric is an error.
  void alias(std::string_view alias_name, std::string_view name);

  /// Current value of one metric (base + live probes); 0.0 if unknown.
  double value(std::string_view name) const;

  std::size_t size() const { return slots_.size(); }
  std::string_view name(std::size_t slot) const { return (*names_)[slot]; }
  double value_at(std::size_t slot) const;

  MetricsSnapshot snapshot() const;

 private:
  friend class Counter;
  friend class ProbeHandle;

  struct Probe {
    std::uint64_t id = 0;
    std::function<double()> fn;
  };
  struct Slot {
    double base = 0.0;
    std::vector<Probe> probes;
  };

  std::size_t resolve(std::string_view name);
  void latch(std::size_t slot, std::uint64_t probe_id);

  // Name table shared with snapshots; deque keeps element references
  // stable as the registry grows. Aliases live only in index_ (mapped to
  // the canonical slot), never in names_.
  std::shared_ptr<std::deque<std::string>> names_;
  std::vector<Slot> slots_;
  std::map<std::string, std::size_t, std::less<>> index_;
  std::uint64_t next_probe_id_ = 1;
};

/// Register pull probes for a LogHistogram's quantiles under `prefix`:
/// `<prefix>.p50_us`, `.p90_us`, `.p99_us` and `.max_us` (nanosecond
/// samples exported in microseconds, matching the loadgen convention).
/// Percentiles are per-publisher values — summing them across ranks is
/// meaningless — so callers pass a rank-qualified prefix when more than
/// one publisher exists. `hist` must outlive the returned handles.
std::vector<ProbeHandle> histogram_probes(MetricsRegistry& m,
                                          const std::string& prefix,
                                          const LogHistogram* hist);

inline void Counter::add(double delta) {
  if (reg_ != nullptr) reg_->slots_[slot_].base += delta;
}

inline ProbeHandle& ProbeHandle::operator=(ProbeHandle&& o) noexcept {
  if (this != &o) {
    release();
    reg_ = o.reg_;
    slot_ = o.slot_;
    id_ = o.id_;
    o.reg_ = nullptr;
  }
  return *this;
}

inline void ProbeHandle::release() {
  if (reg_ != nullptr) {
    reg_->latch(slot_, id_);
    reg_ = nullptr;
  }
}

/// Cluster-level telemetry configuration (consumed by core::Cluster).
struct TelemetryConfig {
  /// Master switch. On, the cluster samples the registry into tracer
  /// counter tracks on a virtual-time cadence and makes its tracer
  /// available even without ClusterConfig::enable_tracing. Off, nothing
  /// is sampled and no telemetry output exists — runs are byte-identical
  /// to a build without telemetry.
  bool enabled = false;
  /// Virtual-time cadence of counter-track samples (0 = no sampling).
  TimePs sampling_period = us(100);
  /// Metric-name prefixes sampled into counter tracks (empty = all).
  std::vector<std::string> categories;
};

}  // namespace ibp::telemetry
