#pragma once

// Per-request distributed tracing with tail-latency attribution.
//
// The serving stack (ibp_rpc / ibp_fabric) reports where each request's
// time went as a span tree: client issue -> link send -> server
// admission -> per-tenant queue wait -> worker-track service (with the
// lock-arbitration time the share-mode model charged) -> response
// stripe segments -> client reassembly. One RequestTracer hub per
// cluster owns every record; the layers above translate their own state
// into the hub's generic (trace id, stage, rank, time) vocabulary, so
// ibp_telemetry stays below ibp_rpc in the layer order.
//
// TraceContext on the wire: a request's membership in the trace stream
// is carried in the WireHeader flags field (rpc::kFlagTraced — the
// header's reserved trace-context bit, echoed on responses and
// propagated through FabricClient stripe segments). The trace id itself
// never travels: (source rank, destination rank, rpc id) identifies a
// request uniquely on a link, so both endpoints resolve the same record
// through the hub's wire index, and stripe segments adopt their fabric
// parent by the same key. Keeping the id off the wire keeps the header
// at 24 bytes — wire sizes, and therefore virtual time, are identical
// with tracing on or off.
//
// Stages tile the request's lifetime exactly: each stage_mark() closes
// the span that began where the previous one ended (the record's
// cursor), so the per-stage durations of one record always sum to its
// end-to-end latency — the invariant `ibplace trace-report` checks. The
// hub never advances virtual time and never touches simulated memory;
// with the hub absent (RequestTraceConfig::enabled == false) the stack
// is bit-inert, including wire bits.
//
// Tail sampling: every finished record folds into per-stage
// LogHistograms (surfaced as rpc.stage.* registry probes) and
// per-tenant/per-class SLO burn counters; full span detail is retained
// only for the slowest-k requests and for error/retry requests, both in
// fixed-size rings, so exemplar memory is bounded no matter how many
// requests a run serves.

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ibp/common/stats.hpp"
#include "ibp/common/types.hpp"
#include "ibp/telemetry/registry.hpp"

namespace ibp::sim {
class Tracer;
}

namespace ibp::telemetry {

/// Stages of a request's lifetime, in timeline order. The rpc stages
/// (ClientQueue..NetResponse) tile an rpc-level record; the fabric
/// stages (Fanout..Reassembly) tile a striped fabric-level record whose
/// children are rpc-level segment records.
enum class Stage : std::uint8_t {
  ClientQueue = 0,  // submit() -> request batch posted to the link
  NetRequest,       // batch posted -> server admission accept
  ServerQueue,      // admission accept -> worker track picks it up
  Service,          // service time + application handler
  NetResponse,      // handler done -> client parses the response
  Fanout,           // fabric: stripe segments submitted across links
  StripeWait,       // fabric: last submit -> last segment arrival
  Reassembly,       // fabric: segment arrival -> assembled completion
  kCount
};
inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kCount);
const char* stage_name(Stage s);

/// One tiled stage span of a request, on the lane of the rank that
/// executed it.
struct SpanRec {
  Stage stage = Stage::ClientQueue;
  RankId rank = 0;
  TimePs start = 0;
  TimePs end = 0;
};

/// The full span tree of one request (rpc-level, or fabric-level with
/// children pointing at its stripe segments' records).
struct RequestRecord {
  std::uint64_t trace = 0;   // hub-assigned, unique per cluster
  std::uint64_t parent = 0;  // enclosing fabric trace (0 = root)
  std::uint16_t seg_index = 0;  // position under the parent stripe
  RankId origin = 0;            // issuing client rank
  std::uint32_t tenant = 0;
  std::uint8_t cls = 0;     // rpc::Class
  std::uint8_t status = 0;  // rpc::Status at completion
  std::uint32_t retries = 0;
  /// Failover hops: times the request (or one of its stripe segments)
  /// was re-issued on a surviving server after a shard-map epoch bump.
  std::uint32_t failover_hops = 0;
  TimePs t0 = 0;
  TimePs t_end = 0;
  /// Lock-arbitration time the share-mode model charged the serving
  /// adapter while this request was in service (SharedLocked only).
  TimePs arbitration_ps = 0;
  std::vector<SpanRec> spans;
  std::vector<std::uint64_t> children;  // stripe segment trace ids

  TimePs latency() const { return t_end - t0; }

  // -- hub-internal bookkeeping --
  TimePs cursor = 0;  // end of the last tiled span
  std::array<std::uint64_t, 3> wire{};  // wire-index key while bound
  bool wire_bound = false;
  bool in_slowest = false;  // exemplar retention reasons
  bool in_errors = false;
};

struct RequestTraceConfig {
  /// Master switch. Off (the default), core::Cluster creates no hub and
  /// the serving stack is bit-inert — no wire flag, no virtual-time
  /// cost, byte-identical outputs.
  bool enabled = false;
  /// Full span detail is kept for the slowest-k finished requests...
  std::uint32_t slowest_k = 32;
  /// ...and for up to this many error/retry requests (oldest evicted
  /// first). Everything else folds into the stage histograms only.
  std::uint32_t error_ring = 64;
  /// Per-class SLO latency targets. A completion that misses its
  /// class's target (or failed outright) burns one
  /// `rpc.slo.t<tenant>.<class>_burn` counter unit.
  TimePs slo_latency = us(200);
  TimePs slo_bulk = us(2000);
};

/// The cluster-wide request-tracing hub. Not thread-safe in host terms,
/// which is fine: the sim engine runs one rank track at a time. Every
/// method is host-side only — no virtual time, no simulated memory.
class RequestTracer {
 public:
  RequestTracer(const RequestTraceConfig& cfg, MetricsRegistry* metrics,
                sim::Tracer* tracer);

  /// False while a loadgen warmup phase mutes the hub: begin() returns 0
  /// and the whole pipeline no-ops, so only steady state is attributed.
  bool active() const { return !muted_; }
  void set_muted(bool m) { muted_ = m; }

  /// Open a record at `t0`. Returns the trace id (0 when muted).
  std::uint64_t begin(RankId origin, std::uint32_t tenant, std::uint8_t cls,
                      TimePs t0, std::uint64_t parent = 0);

  /// Publish `trace` in the wire index under (src rank, dst rank,
  /// rpc id), the in-band identity both endpoints can compute.
  void bind_wire(std::uint64_t trace, RankId src, RankId dst,
                 std::uint64_t rpc_id);
  /// Resolve a wire key to its live trace (0 if unknown/finished).
  std::uint64_t wire_trace(RankId src, RankId dst,
                           std::uint64_t rpc_id) const;

  /// Attach a segment record under its fabric parent.
  void adopt(std::uint64_t child, std::uint64_t parent,
             std::uint16_t seg_index);

  /// Close stage `stage` at `t`: the span began at the record's cursor
  /// (t0 for the first stage) and the cursor advances to `t`, so marks
  /// tile the timeline by construction. Unknown traces, repeated stages
  /// (a retransmit's duplicate server pass) and non-monotone marks are
  /// ignored.
  void stage_mark(std::uint64_t trace, Stage stage, RankId rank, TimePs t);

  /// Attribute share-mode lock-arbitration time observed during the
  /// request's service window.
  void add_arbitration(std::uint64_t trace, TimePs ps);

  /// Count a client retransmission (makes the record error-exemplar
  /// eligible).
  void retry(std::uint64_t trace);

  /// Count a failover hop: the fabric re-issued the request on a
  /// surviving server after declaring its home dead. Error-exemplar
  /// eligible like retry() — a rerouted request is worth keeping.
  void failover(std::uint64_t trace);

  /// Finish the record at `t` with rpc::Status `status`: fold stages
  /// into the histograms, burn SLO counters, emit Chrome async spans,
  /// and retain or drop span detail per the tail-sampling policy.
  void end(std::uint64_t trace, std::uint8_t status, TimePs t);

  const LogHistogram& stage_hist(Stage s) const {
    return stage_hist_[static_cast<std::size_t>(s)];
  }
  /// End-to-end latency of finished requests (root and segment records
  /// alike), nanosecond units.
  const LogHistogram& e2e_hist() const { return e2e_; }
  const LogHistogram& arbitration_hist() const { return arb_; }

  std::uint64_t finished() const { return finished_; }
  std::size_t live() const { return live_.size(); }
  /// Records currently retained with full span detail (bounded by
  /// slowest_k + error_ring).
  std::size_t exemplar_count() const { return exemplars_.size(); }
  /// The retained exemplar records, keyed by trace id.
  const std::map<std::uint64_t, RequestRecord>& exemplars() const {
    return exemplars_;
  }
  const RequestTraceConfig& config() const { return cfg_; }

  /// The structured per-request record stream: one JSON object per
  /// line — a meta line, the exemplar records (sorted by trace id),
  /// then a stage-summary line over the full population. Byte-identical
  /// across identical runs.
  void write_jsonl(std::ostream& os) const;

 private:
  RequestRecord* find_live(std::uint64_t trace);
  void retain_or_fold(RequestRecord&& rec, bool is_error);
  void drop_if_unreferenced(std::uint64_t trace);
  void emit_async(const RequestRecord& rec);
  Counter& slo_counter(std::uint32_t tenant, std::uint8_t cls);

  RequestTraceConfig cfg_;
  MetricsRegistry* metrics_;
  sim::Tracer* tracer_;  // may be null (no Chrome trace requested)
  bool muted_ = false;
  std::uint64_t next_trace_ = 1;
  std::uint64_t finished_ = 0;

  std::map<std::uint64_t, RequestRecord> live_;
  std::map<std::array<std::uint64_t, 3>, std::uint64_t> wire_;

  // Tail-sampled exemplars: full records by trace id, membership driven
  // by the slowest-k set (latency-ordered) and the error ring (FIFO).
  std::map<std::uint64_t, RequestRecord> exemplars_;
  std::multimap<TimePs, std::uint64_t> slowest_;
  std::deque<std::uint64_t> errors_;

  std::array<LogHistogram, kStageCount> stage_hist_;
  LogHistogram e2e_;
  LogHistogram arb_;
  std::map<std::pair<std::uint32_t, std::uint8_t>, Counter> slo_;
  std::vector<ProbeHandle> probes_;
};

}  // namespace ibp::telemetry
