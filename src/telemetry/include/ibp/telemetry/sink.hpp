#pragma once

// Pluggable exporters for one simulation run's telemetry.
//
// A RunTelemetry bundle carries everything a run produced — the tracer
// (spans, counter tracks, flow events) and a final metrics snapshot —
// and a TelemetrySink serializes whichever part it understands:
//
//   * ChromeTraceJsonSink — the tracer as Chrome trace-event JSON
//     (chrome://tracing / Perfetto);
//   * MetricsJsonSink    — the snapshot as a flat name→value JSON object;
//   * CsvSeriesSink      — the counter tracks as a CSV time series
//     (one row per sample: metric, ts_us, value).
//
// `metrics_filter` restricts MetricsJsonSink / CsvSeriesSink to metric
// names with the given prefix (empty = everything).

#include <ostream>
#include <string>

#include "ibp/sim/tracer.hpp"
#include "ibp/telemetry/registry.hpp"

namespace ibp::telemetry {

struct RunTelemetry {
  const sim::Tracer* tracer = nullptr;      // may be null (tracing off)
  const MetricsSnapshot* metrics = nullptr; // may be null (no registry)
  std::string metrics_filter;               // name prefix, empty = all
};

class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void write(const RunTelemetry& run, std::ostream& os) const = 0;
};

/// Chrome trace-event JSON array (spans, counters, flows, metadata).
class ChromeTraceJsonSink final : public TelemetrySink {
 public:
  void write(const RunTelemetry& run, std::ostream& os) const override;
};

/// Flat JSON object: {"metric.name": value, ...}, filter applied,
/// names in registry (registration) order.
class MetricsJsonSink final : public TelemetrySink {
 public:
  void write(const RunTelemetry& run, std::ostream& os) const override;
};

/// CSV time series derived from the tracer's counter tracks:
/// header `metric,ts_us,value`, one row per sample, filter applied.
class CsvSeriesSink final : public TelemetrySink {
 public:
  void write(const RunTelemetry& run, std::ostream& os) const override;
};

/// Serialize a metrics delta as a JSON object
/// {"metric.name": {"before": b, "after": a, "delta": d}, ...}.
void write_delta_json(const MetricsDelta& delta, std::ostream& os,
                      std::string_view indent = "");

}  // namespace ibp::telemetry
