#include "ibp/telemetry/sink.hpp"

namespace ibp::telemetry {

namespace {

bool matches(std::string_view name, std::string_view prefix) {
  return prefix.empty() || name.substr(0, prefix.size()) == prefix;
}

}  // namespace

void ChromeTraceJsonSink::write(const RunTelemetry& run,
                                std::ostream& os) const {
  if (run.tracer == nullptr) {
    os << "[]\n";
    return;
  }
  run.tracer->write_json(os);
}

void MetricsJsonSink::write(const RunTelemetry& run, std::ostream& os) const {
  os << "{\n";
  bool any = false;
  if (run.metrics != nullptr) {
    for (std::size_t i = 0; i < run.metrics->size(); ++i) {
      const std::string_view name = run.metrics->name(i);
      if (!matches(name, run.metrics_filter)) continue;
      if (any) os << ",\n";
      any = true;
      os << "  \"" << sim::Tracer::escaped(std::string(name))
         << "\": " << run.metrics->value(i);
    }
  }
  os << (any ? "\n}\n" : "}\n");
}

void CsvSeriesSink::write(const RunTelemetry& run, std::ostream& os) const {
  os << "metric,ts_us,value\n";
  if (run.tracer == nullptr) return;
  for (const auto& e : run.tracer->events()) {
    if (e.kind != sim::Tracer::Kind::Counter) continue;
    if (!matches(e.name, run.metrics_filter)) continue;
    os << e.name << "," << ps_to_us(e.start) << "," << e.value << "\n";
  }
}

void write_delta_json(const MetricsDelta& delta, std::ostream& os,
                      std::string_view indent) {
  os << "{";
  for (std::size_t i = 0; i < delta.entries.size(); ++i) {
    const auto& e = delta.entries[i];
    os << (i == 0 ? "\n" : ",\n") << indent << "  \""
       << sim::Tracer::escaped(std::string(e.name)) << "\": {\"before\": "
       << e.before << ", \"after\": " << e.after
       << ", \"delta\": " << e.delta() << "}";
  }
  if (!delta.entries.empty()) os << "\n" << indent;
  os << "}";
}

}  // namespace ibp::telemetry
