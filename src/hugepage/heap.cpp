#include "ibp/hugepage/heap.hpp"

#include <algorithm>
#include <optional>

namespace ibp::hugepage {

HugeHeap::HugeHeap(mem::AddressSpace& space, mem::HugeTlbFs& fs,
                   HugeHeapConfig cfg)
    : space_(space), fs_(fs), cfg_(cfg) {
  IBP_CHECK(is_pow2(cfg_.chunk) && cfg_.chunk >= 64 &&
                cfg_.chunk <= kHugePageSize,
            "chunk size must be a power of two within [64, 2M]");
  IBP_CHECK(cfg_.min_map_bytes % kHugePageSize == 0,
            "growth granularity must be whole hugepages");
}

std::optional<TimePs> HugeHeap::grow(std::uint64_t need_bytes) {
  const std::uint64_t bytes =
      std::max(align_up(need_bytes, kHugePageSize), cfg_.min_map_bytes);
  const std::uint64_t pages = bytes / kHugePageSize;
  // §3.1 layer 2: leave a reserve of hugepages for fork/COW headroom.
  if (fs_.available() < pages + cfg_.lib_reserve_pages) return std::nullopt;

  mem::Mapping& m = space_.map(bytes, mem::PageKind::Huge);
  regions_.emplace(m.va_base, m.length);
  free_by_addr_.emplace(m.va_base, m.length / cfg_.chunk);
  lifo_order_.push_back(m.va_base);
  stats_.regions_mapped += 1;
  stats_.bytes_mapped += m.length;
  return cfg_.costs.mmap_syscall + pages * cfg_.costs.fault_huge;
}

std::map<VirtAddr, std::uint64_t>::iterator HugeHeap::find_fit(
    std::uint64_t chunks, std::uint64_t* steps) {
  switch (cfg_.fit) {
    case FitPolicy::AddressOrderedFirstFit: {
      for (auto it = free_by_addr_.begin(); it != free_by_addr_.end(); ++it) {
        ++*steps;
        if (it->second >= chunks) return it;
      }
      return free_by_addr_.end();
    }
    case FitPolicy::BestFit: {
      auto best = free_by_addr_.end();
      for (auto it = free_by_addr_.begin(); it != free_by_addr_.end(); ++it) {
        ++*steps;
        if (it->second >= chunks &&
            (best == free_by_addr_.end() || it->second < best->second))
          best = it;
      }
      return best;
    }
    case FitPolicy::LifoFirstFit: {
      for (auto va_it = lifo_order_.rbegin(); va_it != lifo_order_.rend();
           ++va_it) {
        ++*steps;
        auto it = free_by_addr_.find(*va_it);
        if (it != free_by_addr_.end() && it->second >= chunks) return it;
      }
      return free_by_addr_.end();
    }
  }
  IBP_FAIL("unknown fit policy");
}

OpResult HugeHeap::allocate(std::uint64_t size) {
  IBP_CHECK(size > 0, "zero-byte allocation");
  const std::uint64_t chunks = div_ceil(size, cfg_.chunk);
  TimePs cost = cfg_.costs.op_base;
  std::uint64_t steps = 0;

  auto it = find_fit(chunks, &steps);
  if (it == free_by_addr_.end()) {
    const auto grow_cost = grow(chunks * cfg_.chunk);
    if (!grow_cost) {
      stats_.failed_allocs += 1;
      return {0, cost + steps * cfg_.costs.per_scan_step};
    }
    cost += *grow_cost;
    it = find_fit(chunks, &steps);
    IBP_CHECK(it != free_by_addr_.end(), "fresh region must satisfy fit");
  }
  cost += steps * cfg_.costs.per_scan_step;
  stats_.scan_steps += steps;

  const VirtAddr va = it->first;
  const std::uint64_t have = it->second;
  if (cfg_.fit == FitPolicy::LifoFirstFit) {
    lifo_order_.erase(std::find(lifo_order_.begin(), lifo_order_.end(), va));
  }
  free_by_addr_.erase(it);
  if (have > chunks) {
    const VirtAddr rest = va + chunks * cfg_.chunk;
    free_by_addr_.emplace(rest, have - chunks);
    if (cfg_.fit == FitPolicy::LifoFirstFit) lifo_order_.push_back(rest);
    cost += cfg_.costs.split;
    stats_.splits += 1;
  }

  live_.emplace(va, Live{chunks, size});
  stats_.allocs += 1;
  stats_.bytes_live += chunks * cfg_.chunk;
  stats_.bytes_live_peak = std::max(stats_.bytes_live_peak, stats_.bytes_live);
  return {va, cost};
}

OpResult HugeHeap::deallocate(VirtAddr addr) {
  auto it = live_.find(addr);
  IBP_CHECK(it != live_.end(), "free of unknown hugepage block " << std::hex
                                                                 << addr);
  const std::uint64_t chunks = it->second.chunks;
  live_.erase(it);
  stats_.frees += 1;
  stats_.bytes_live -= chunks * cfg_.chunk;
  TimePs cost = cfg_.costs.op_base;

  VirtAddr va = addr;
  std::uint64_t n = chunks;
  if (cfg_.coalesce_on_free) {
    // Ablation mode: merge with physically adjacent free neighbours inside
    // the same region.
    const auto region = regions_.upper_bound(va);
    IBP_CHECK(region != regions_.begin());
    const auto [rbase, rlen] = *std::prev(region);
    auto next = free_by_addr_.lower_bound(va);
    if (next != free_by_addr_.end() && next->first == va + n * cfg_.chunk &&
        next->first < rbase + rlen) {
      n += next->second;
      if (cfg_.fit == FitPolicy::LifoFirstFit)
        lifo_order_.erase(
            std::find(lifo_order_.begin(), lifo_order_.end(), next->first));
      free_by_addr_.erase(next);
      cost += cfg_.costs.coalesce;
      stats_.coalesces += 1;
    }
    auto prev = free_by_addr_.lower_bound(va);
    if (prev != free_by_addr_.begin()) {
      --prev;
      if (prev->first + prev->second * cfg_.chunk == va &&
          prev->first >= rbase) {
        va = prev->first;
        n += prev->second;
        if (cfg_.fit == FitPolicy::LifoFirstFit)
          lifo_order_.erase(
              std::find(lifo_order_.begin(), lifo_order_.end(), prev->first));
        free_by_addr_.erase(prev);
        cost += cfg_.costs.coalesce;
        stats_.coalesces += 1;
      }
    }
  }

  free_by_addr_.emplace(va, n);
  if (cfg_.fit == FitPolicy::LifoFirstFit) lifo_order_.push_back(va);
  return {addr, cost};
}

std::uint64_t HugeHeap::coalesce_all(TimePs* cost) {
  std::uint64_t merges = 0;
  TimePs t = 0;
  auto it = free_by_addr_.begin();
  while (it != free_by_addr_.end()) {
    auto next = std::next(it);
    t += cfg_.costs.per_scan_step;
    if (next == free_by_addr_.end()) break;
    // Merge only within one mapped region.
    const auto region = regions_.upper_bound(it->first);
    IBP_CHECK(region != regions_.begin());
    const auto [rbase, rlen] = *std::prev(region);
    if (it->first + it->second * cfg_.chunk == next->first &&
        next->first < rbase + rlen) {
      it->second += next->second;
      if (cfg_.fit == FitPolicy::LifoFirstFit)
        lifo_order_.erase(
            std::find(lifo_order_.begin(), lifo_order_.end(), next->first));
      free_by_addr_.erase(next);
      t += cfg_.costs.coalesce;
      stats_.coalesces += 1;
      ++merges;
    } else {
      ++it;
    }
  }
  if (cost != nullptr) *cost = t;
  return merges;
}

bool HugeHeap::owns(VirtAddr addr) const {
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) return false;
  --it;
  return addr < it->first + it->second;
}

std::uint64_t HugeHeap::block_size(VirtAddr addr) const {
  auto it = live_.find(addr);
  IBP_CHECK(it != live_.end(), "block_size of unknown block");
  return it->second.requested;
}

std::uint64_t HugeHeap::free_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [va, chunks] : free_by_addr_) total += chunks * cfg_.chunk;
  return total;
}

void HugeHeap::check_invariants() const {
  // Every free/live block must be chunk-aligned (relative to its region),
  // lie inside exactly one region, and free+live must tile without overlap.
  std::uint64_t accounted = 0;
  VirtAddr prev_end = 0;
  for (const auto& [va, chunks] : free_by_addr_) {
    IBP_CHECK(chunks > 0, "empty free block");
    IBP_CHECK(owns(va) && owns(va + chunks * cfg_.chunk - 1),
              "free block outside regions");
    IBP_CHECK(va >= prev_end, "overlapping free blocks");
    prev_end = va + chunks * cfg_.chunk;
    accounted += chunks * cfg_.chunk;
  }
  for (const auto& [va, live] : live_) {
    IBP_CHECK(owns(va) && owns(va + live.chunks * cfg_.chunk - 1),
              "live block outside regions");
    // No live block may intersect a free block.
    auto it = free_by_addr_.upper_bound(va + live.chunks * cfg_.chunk - 1);
    if (it != free_by_addr_.begin()) {
      --it;
      IBP_CHECK(it->first + it->second * cfg_.chunk <= va ||
                    it->first >= va + live.chunks * cfg_.chunk,
                "live/free overlap");
    }
    accounted += live.chunks * cfg_.chunk;
  }
  std::uint64_t mapped = 0;
  for (const auto& [base, len] : regions_) mapped += len;
  IBP_CHECK(accounted == mapped,
            "free+live bytes (" << accounted << ") != mapped (" << mapped
                                << ")");
}

}  // namespace ibp::hugepage
