#pragma once

// Transparency layer of the paper's hugepage library (§3.1 layer 1).
//
// This is the LD_PRELOAD-equivalent entry point: it intercepts allocation
// requests and routes them per Figure 2 of the paper:
//
//     size < 32 KB ............................ libc allocator
//     size >= 32 KB, hugepages available ...... hugepage heap
//     hugepage pool exhausted ................. fall back to libc
//
// The 32 KB threshold is the paper's empirical cutoff: below it, small
// pages registered faster in their measurements and hugepage-TLB pressure
// (8 entries on Opteron) outweighs the benefit. `enabled=false` models a
// run without the preloaded library (everything goes to libc), which is
// the paper's baseline configuration.

#include <cstdint>

#include "ibp/common/types.hpp"
#include "ibp/hugepage/heap.hpp"
#include "ibp/hugepage/libc_heap.hpp"

namespace ibp::hugepage {

struct LibraryConfig {
  bool enabled = true;
  std::uint64_t threshold = 32 * kKiB;  // §3.2 #1
  HugeHeapConfig huge;
  LibcHeapConfig libc;
};

struct LibraryStats {
  std::uint64_t huge_allocs = 0;
  std::uint64_t libc_allocs = 0;       // below threshold
  std::uint64_t fallback_allocs = 0;   // pool exhausted
};

class Library {
 public:
  Library(mem::AddressSpace& space, mem::HugeTlbFs& fs,
          LibraryConfig cfg = {})
      : cfg_(cfg),
        huge_(space, fs, cfg.huge),
        libc_(space, cfg.libc) {}

  /// malloc(): returns the block address and the virtual-time cost of the
  /// allocator work (the caller advances its clock by it).
  OpResult malloc(std::uint64_t size) {
    if (!cfg_.enabled || size < cfg_.threshold) {
      ++stats_.libc_allocs;
      return libc_.allocate(size);
    }
    OpResult r = huge_.allocate(size);
    if (r.addr == 0) {
      // Figure 2: not enough hugepages — redirect the request to libc.
      ++stats_.fallback_allocs;
      OpResult f = libc_.allocate(size);
      f.cost += r.cost;
      return f;
    }
    ++stats_.huge_allocs;
    return r;
  }

  /// posix_memalign(): the paper's aligned-data-placement strategy for
  /// small buffers (§4: work-request duration depends on the buffer's
  /// offset; aligned starts hit the DMA fast path). Requests at or above
  /// the hugepage threshold are chunk-aligned (4 KB) by construction.
  OpResult memalign(std::uint64_t alignment, std::uint64_t size) {
    if (!cfg_.enabled || size < cfg_.threshold) {
      ++stats_.libc_allocs;
      return libc_.allocate_aligned(size, alignment);
    }
    // Hugepage blocks are 4 KB-chunk aligned, satisfying any smaller
    // alignment; larger requests fall back to the small-page path.
    if (alignment <= cfg_.huge.chunk) return malloc(size);
    ++stats_.libc_allocs;
    return libc_.allocate_aligned(size, alignment);
  }

  /// free(): dispatches on the owning heap.
  OpResult free(VirtAddr addr) {
    if (huge_.owns(addr)) return huge_.deallocate(addr);
    return libc_.deallocate(addr);
  }

  /// calloc(): malloc + zero. The zeroing cost (one sweep of the block)
  /// is folded into the returned cost using the heap's stream rate proxy.
  OpResult calloc(std::uint64_t count, std::uint64_t size,
                  mem::AddressSpace& space) {
    const std::uint64_t bytes = count * size;
    IBP_CHECK(count == 0 || bytes / count == size, "calloc overflow");
    OpResult r = malloc(bytes);
    if (r.addr != 0) {
      auto span = space.host_span(r.addr, bytes);
      std::fill(span.begin(), span.end(), 0);
      r.cost += bytes / 8;  // ~8 B/ns zeroing, in picoseconds
    }
    return r;
  }

  /// realloc(): grow/shrink preserving contents (alloc + copy + free). A
  /// shrink that still fits the block's chunk rounding is free.
  OpResult realloc(VirtAddr addr, std::uint64_t new_size,
                   mem::AddressSpace& space) {
    if (addr == 0) return malloc(new_size);
    const std::uint64_t old_size = block_size(addr);
    // In-place when the rounded footprint wouldn't change.
    const std::uint64_t chunk = cfg_.huge.chunk;
    if (in_hugepages(addr) && new_size <= align_up(old_size, chunk) &&
        new_size >= old_size / 2) {
      return {addr, cfg_.huge.costs.op_base};
    }
    OpResult r = malloc(new_size);
    if (r.addr == 0) return r;
    const std::uint64_t copy = std::min(old_size, new_size);
    auto from = space.host_span(addr, copy);
    auto to = space.host_span(r.addr, copy);
    std::copy(from.begin(), from.end(), to.begin());
    r.cost += copy / 4;  // ~4 B/ns copy, in picoseconds
    r.cost += free(addr).cost;
    return r;
  }

  /// Size originally requested for a live block.
  std::uint64_t block_size(VirtAddr addr) const {
    return huge_.owns(addr) ? huge_.block_size(addr)
                            : libc_.block_size(addr);
  }

  bool in_hugepages(VirtAddr addr) const { return huge_.owns(addr); }

  const LibraryStats& stats() const { return stats_; }
  HugeHeap& huge_heap() { return huge_; }
  LibcHeap& libc_heap() { return libc_; }
  const LibraryConfig& config() const { return cfg_; }

  void check_invariants() const {
    huge_.check_invariants();
    libc_.check_invariants();
  }

 private:
  LibraryConfig cfg_;
  LibraryStats stats_;
  HugeHeap huge_;
  LibcHeap libc_;
};

}  // namespace ibp::hugepage
