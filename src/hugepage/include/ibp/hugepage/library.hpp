#pragma once

// Transparency layer of the paper's hugepage library (§3.1 layer 1).
//
// This is the LD_PRELOAD-equivalent entry point: it intercepts allocation
// requests and routes them per Figure 2 of the paper:
//
//     size < 32 KB ............................ libc allocator
//     size >= 32 KB, hugepages available ...... hugepage heap
//     hugepage pool exhausted ................. fall back to libc
//
// The 32 KB threshold is the paper's empirical cutoff: below it, small
// pages registered faster in their measurements and hugepage-TLB pressure
// (8 entries on Opteron) outweighs the benefit. `enabled=false` models a
// run without the preloaded library (everything goes to libc), which is
// the paper's baseline configuration.

// Placement decisions (backing tier, alignment, chunk granularity) are
// delegated to ibp::placement: every allocation asks a policy for a
// BufferPlan and routes accordingly. Without an injected engine the
// library plans with a private PaperDefaultPolicy, which reproduces the
// Figure 2 routing above bit-exactly.

#include <cstdint>

#include "ibp/common/types.hpp"
#include "ibp/hugepage/heap.hpp"
#include "ibp/hugepage/libc_heap.hpp"
#include "ibp/placement/placement.hpp"

namespace ibp::hugepage {

struct LibraryConfig {
  bool enabled = true;
  std::uint64_t threshold = 32 * kKiB;  // §3.2 #1
  HugeHeapConfig huge;
  LibcHeapConfig libc;
};

struct LibraryStats {
  std::uint64_t huge_allocs = 0;
  std::uint64_t libc_allocs = 0;       // below threshold
  std::uint64_t fallback_allocs = 0;   // pool exhausted
};

class Library {
 public:
  /// `engine` (optional) supplies placement plans; the library falls back
  /// to a private PaperDefaultPolicy when none is injected. The hugepage
  /// heap's chunk granularity is taken from the plan at construction.
  Library(mem::AddressSpace& space, mem::HugeTlbFs& fs,
          LibraryConfig cfg = {},
          placement::PlacementEngine* engine = nullptr)
      : cfg_(cfg),
        engine_(engine),
        chunk_(plan_for(cfg.threshold, placement::Role::WorkloadHeap).chunk),
        huge_(space, fs,
              [&cfg, this] {
                HugeHeapConfig h = cfg.huge;
                h.chunk = chunk_;
                return h;
              }()),
        libc_(space, cfg.libc) {}

  /// malloc(): returns the block address and the virtual-time cost of the
  /// allocator work (the caller advances its clock by it). `role` lets
  /// communication layers tell the policy what the buffer is for.
  OpResult malloc(std::uint64_t size,
                  placement::Role role = placement::Role::WorkloadHeap) {
    const placement::BufferPlan plan = plan_for(size, role);
    if (plan.backing == mem::PageKind::Small) {
      ++stats_.libc_allocs;
      return plan.alignment > 0 ? libc_.allocate_aligned(size, plan.alignment)
                                : libc_.allocate(size);
    }
    OpResult r = huge_.allocate(size);
    if (r.addr == 0) {
      // Figure 2: not enough hugepages — redirect the request to libc.
      ++stats_.fallback_allocs;
      if (engine_) {
        engine_->feed({.size = size,
                       .backing = mem::PageKind::Huge,
                       .cost = r.cost,
                       .alloc_failed = true});
      }
      OpResult f = libc_.allocate(size);
      f.cost += r.cost;
      return f;
    }
    ++stats_.huge_allocs;
    return r;
  }

  /// posix_memalign(): the paper's aligned-data-placement strategy for
  /// small buffers (§4: work-request duration depends on the buffer's
  /// offset; aligned starts hit the DMA fast path). Requests at or above
  /// the hugepage threshold are chunk-aligned (4 KB) by construction.
  OpResult memalign(std::uint64_t alignment, std::uint64_t size) {
    const placement::BufferPlan plan =
        plan_for(size, placement::Role::WorkloadHeap);
    if (plan.backing == mem::PageKind::Small) {
      ++stats_.libc_allocs;
      return libc_.allocate_aligned(size, std::max(alignment, plan.alignment));
    }
    // Hugepage blocks are chunk aligned, satisfying any smaller
    // alignment; larger requests fall back to the small-page path.
    if (alignment <= chunk_) return malloc(size);
    ++stats_.libc_allocs;
    return libc_.allocate_aligned(size, alignment);
  }

  /// free(): dispatches on the owning heap.
  OpResult free(VirtAddr addr) {
    if (huge_.owns(addr)) return huge_.deallocate(addr);
    return libc_.deallocate(addr);
  }

  /// calloc(): malloc + zero. The zeroing cost (one sweep of the block)
  /// is folded into the returned cost using the heap's stream rate proxy.
  OpResult calloc(std::uint64_t count, std::uint64_t size,
                  mem::AddressSpace& space) {
    const std::uint64_t bytes = count * size;
    IBP_CHECK(count == 0 || bytes / count == size, "calloc overflow");
    OpResult r = malloc(bytes);
    if (r.addr != 0) {
      auto span = space.host_span(r.addr, bytes);
      std::fill(span.begin(), span.end(), 0);
      r.cost += bytes / 8;  // ~8 B/ns zeroing, in picoseconds
    }
    return r;
  }

  /// realloc(): grow/shrink preserving contents (alloc + copy + free). A
  /// shrink that still fits the block's chunk rounding is free.
  OpResult realloc(VirtAddr addr, std::uint64_t new_size,
                   mem::AddressSpace& space) {
    if (addr == 0) return malloc(new_size);
    const std::uint64_t old_size = block_size(addr);
    // In-place when the rounded footprint wouldn't change.
    const std::uint64_t chunk = chunk_;
    if (in_hugepages(addr) && new_size <= align_up(old_size, chunk) &&
        new_size >= old_size / 2) {
      return {addr, cfg_.huge.costs.op_base};
    }
    OpResult r = malloc(new_size);
    if (r.addr == 0) return r;
    const std::uint64_t copy = std::min(old_size, new_size);
    auto from = space.host_span(addr, copy);
    auto to = space.host_span(r.addr, copy);
    std::copy(from.begin(), from.end(), to.begin());
    r.cost += copy / 4;  // ~4 B/ns copy, in picoseconds
    r.cost += free(addr).cost;
    return r;
  }

  /// Size originally requested for a live block.
  std::uint64_t block_size(VirtAddr addr) const {
    return huge_.owns(addr) ? huge_.block_size(addr)
                            : libc_.block_size(addr);
  }

  bool in_hugepages(VirtAddr addr) const { return huge_.owns(addr); }

  const LibraryStats& stats() const { return stats_; }
  HugeHeap& huge_heap() { return huge_; }
  LibcHeap& libc_heap() { return libc_; }
  const LibraryConfig& config() const { return cfg_; }

  /// Ask the active policy where `size` bytes in `role` should go. The
  /// context carries this library's tunables so per-instance overrides
  /// (tests construct libraries with custom thresholds) keep working.
  placement::BufferPlan plan_for(std::uint64_t size, placement::Role role) {
    placement::BufferRequest req{.size = size, .role = role};
    placement::PolicyContext ctx;
    if (engine_) ctx = engine_->context();
    ctx.huge_threshold = cfg_.threshold;
    ctx.chunk = cfg_.huge.chunk;
    ctx.hugepages_enabled = cfg_.enabled;
    if (engine_) return engine_->plan(req, ctx);
    return placement::PaperDefaultPolicy{}.plan(req, ctx);
  }

  void check_invariants() const {
    huge_.check_invariants();
    libc_.check_invariants();
  }

 private:
  LibraryConfig cfg_;
  placement::PlacementEngine* engine_;
  std::uint64_t chunk_;  // effective carve granularity, from the plan
  LibraryStats stats_;
  HugeHeap huge_;
  LibcHeap libc_;
};

}  // namespace ibp::hugepage
