#pragma once

// Baseline general-purpose allocator modelled on glibc malloc behaviour:
//
//   * small-page arenas grown morecore-style in slabs,
//   * 16-byte block headers (boundary tags) carried in-band,
//   * first-fit over an address-ordered free list, split on allocate,
//   * eager coalescing with both neighbours on free,
//   * requests above mmap_threshold get a dedicated small-page mapping
//     that is unmapped again on free (glibc M_MMAP_THRESHOLD behaviour).
//
// This is the allocator the paper's library competes against (§2/§3.2):
// same-size alloc/free churn makes it coalesce and re-split continuously
// ("thrashing behaviour", as the paper observed with Abinit), and every
// large buffer arrives on fresh, unfaulted 4 KB pages.

#include <cstdint>
#include <map>
#include <unordered_map>

#include "ibp/common/types.hpp"
#include "ibp/hugepage/heap.hpp"
#include "ibp/mem/address_space.hpp"

namespace ibp::hugepage {

struct LibcHeapConfig {
  std::uint64_t header = 16;               // in-band boundary tag
  std::uint64_t align = 16;
  std::uint64_t slab_bytes = 256 * kKiB;   // morecore growth granularity
  /// Initial M_MMAP_THRESHOLD. Like glibc, the threshold is dynamic:
  /// freeing an mmapped block raises it past that block's size, so
  /// repeated same-size alloc/free cycles move into the arenas (where the
  /// coalesce/split churn lives).
  std::uint64_t mmap_threshold = 128 * kKiB;
  std::uint64_t mmap_threshold_max = 32 * kMiB;
  HeapCosts costs;
};

class LibcHeap {
 public:
  explicit LibcHeap(mem::AddressSpace& space, LibcHeapConfig cfg = {});

  OpResult allocate(std::uint64_t size) { return allocate_aligned(size, 0); }
  /// posix_memalign-style: payload aligned to `alignment` (power of two;
  /// 0 = the heap's default 16-byte alignment).
  OpResult allocate_aligned(std::uint64_t size, std::uint64_t alignment);
  OpResult deallocate(VirtAddr addr);

  bool owns(VirtAddr addr) const;
  std::uint64_t block_size(VirtAddr addr) const;

  const HeapStats& stats() const { return stats_; }
  std::uint64_t free_blocks() const { return free_by_addr_.size(); }
  std::uint64_t mmap_threshold() const { return cfg_.mmap_threshold; }

  void check_invariants() const;

 private:
  struct Live {
    std::uint64_t bytes = 0;      // rounded block size (header + padding)
    std::uint64_t requested = 0;
    bool mmapped = false;
    VirtAddr map_base = 0;        // for mmapped blocks
    VirtAddr block_va = 0;        // block start (payload may be padded)
  };

  TimePs grow(std::uint64_t need_bytes);

  mem::AddressSpace& space_;
  LibcHeapConfig cfg_;
  HeapStats stats_;
  std::map<VirtAddr, std::uint64_t> free_by_addr_;  // va -> bytes
  std::unordered_map<VirtAddr, Live> live_;         // payload va -> block
  std::map<VirtAddr, std::uint64_t> arenas_;        // base -> length
};

}  // namespace ibp::hugepage
