#pragma once

// Management layer of the paper's hugepage library (§3.1 layer 3, §3.2).
//
// Design points reproduced from the paper:
//   * hugepage-backed memory is carved into 4 KB chunks; chunked sizes keep
//     the management structures simple and block lookup O(1) (§3.2 #4),
//   * an address-ordered first-fit free list gives the best locality
//     (§3.2 #2, citing Wilson et al.),
//   * management metadata lives in a cache created at initialization time,
//     never in per-buffer headers/footers (§3.2 #3),
//   * free() does not coalesce, avoiding coalesce/split churn when an
//     application frees and re-allocates same-sized buffers (§3.2 #5),
//   * multiple buffers share hugepages (locality), unlike the
//     one-hugepage-per-buffer approach of libhugepagealloc (§2).
//
// The fit policy and coalescing are configurable so the ablation benches
// can quantify each design choice.

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ibp/common/check.hpp"
#include "ibp/common/types.hpp"
#include "ibp/mem/address_space.hpp"

namespace ibp::hugepage {

enum class FitPolicy : std::uint8_t {
  AddressOrderedFirstFit,  // the paper's choice
  BestFit,
  LifoFirstFit,            // unordered free list, most-recently-freed first
};

/// Virtual-time cost parameters for allocator operations (charged by the
/// caller via the cost field of each result).
struct HeapCosts {
  TimePs op_base = ns(60);          // fixed entry/bookkeeping cost
  TimePs per_scan_step = ns(9);     // walking one free-list node
  TimePs split = ns(25);            // splitting a free block
  TimePs coalesce = ns(35);         // merging with a neighbour
  TimePs mmap_syscall = us(2);      // one mmap/munmap system call
  TimePs fault_small = ns(1400);    // first-touch fault, 4 KB page
  TimePs fault_huge = ns(2600);     // first-touch fault, 2 MB page
};

struct HeapStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t scan_steps = 0;
  std::uint64_t splits = 0;
  std::uint64_t coalesces = 0;
  std::uint64_t regions_mapped = 0;
  std::uint64_t bytes_mapped = 0;
  std::uint64_t bytes_live = 0;
  std::uint64_t bytes_live_peak = 0;
  std::uint64_t failed_allocs = 0;  // hugepage pool exhausted
};

/// Result of one allocator operation: the address (0 on failure) and the
/// virtual-time cost to charge.
struct OpResult {
  VirtAddr addr = 0;
  TimePs cost = 0;
};

struct HugeHeapConfig {
  std::uint64_t chunk = 4 * kKiB;       // §3.2 #4
  std::uint64_t min_map_bytes = 8 * kMiB;  // growth granularity
  std::uint64_t lib_reserve_pages = 4;  // hugepages left for fork/COW (§3.1)
  bool coalesce_on_free = false;        // §3.2 #5 (true only for ablation)
  FitPolicy fit = FitPolicy::AddressOrderedFirstFit;
  HeapCosts costs;
};

/// Hugepage-backed chunked heap.
class HugeHeap {
 public:
  HugeHeap(mem::AddressSpace& space, mem::HugeTlbFs& fs,
           HugeHeapConfig cfg = {});

  /// Allocate `size` bytes (rounded up to whole chunks). addr == 0 means
  /// the hugepage pool could not satisfy the request (caller falls back to
  /// the libc path, per Figure 2 of the paper).
  OpResult allocate(std::uint64_t size);

  /// Free a block previously returned by allocate().
  OpResult deallocate(VirtAddr addr);

  /// Whether `addr` belongs to this heap (used by the transparency layer's
  /// free() dispatch).
  bool owns(VirtAddr addr) const;

  /// Bytes requested for the block at `addr` (pre-rounding).
  std::uint64_t block_size(VirtAddr addr) const;

  const HeapStats& stats() const { return stats_; }
  const HugeHeapConfig& config() const { return cfg_; }

  /// Deferred coalescing: merge every pair of adjacent free blocks (the
  /// complement of the no-coalesce-on-free policy — run it at phase
  /// boundaries instead of on every free). Returns the number of merges
  /// and the virtual-time cost in `cost`.
  std::uint64_t coalesce_all(TimePs* cost);

  /// Free-list size (test/ablation observability).
  std::uint64_t free_blocks() const { return free_by_addr_.size(); }
  /// Sum of free bytes currently held by the heap.
  std::uint64_t free_bytes() const;

  /// Invariant check used by property tests: free blocks are disjoint,
  /// chunk-aligned, inside mapped regions, and disjoint from live blocks.
  void check_invariants() const;

 private:
  struct Live {
    std::uint64_t chunks = 0;
    std::uint64_t requested = 0;
  };

  /// Map a new hugepage region able to hold `need_bytes`; returns cost or
  /// nullopt when the pool (minus the library reserve) cannot supply it.
  std::optional<TimePs> grow(std::uint64_t need_bytes);

  /// Find a free block with >= chunks per policy; returns iterator into
  /// free_by_addr_ (end = none) and accumulates scan steps.
  std::map<VirtAddr, std::uint64_t>::iterator find_fit(std::uint64_t chunks,
                                                       std::uint64_t* steps);

  mem::AddressSpace& space_;
  mem::HugeTlbFs& fs_;
  HugeHeapConfig cfg_;
  HeapStats stats_;
  // Address-ordered free list: va -> chunk count. LifoFirstFit keeps a
  // separate recency list of addresses over the same map.
  std::map<VirtAddr, std::uint64_t> free_by_addr_;
  std::vector<VirtAddr> lifo_order_;
  // Metadata "cache" (§3.2 #3): external table, no in-band headers.
  std::unordered_map<VirtAddr, Live> live_;
  // Mapped regions: base -> length.
  std::map<VirtAddr, std::uint64_t> regions_;
};

}  // namespace ibp::hugepage
