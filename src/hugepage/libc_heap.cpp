#include "ibp/hugepage/libc_heap.hpp"

#include <algorithm>

namespace ibp::hugepage {

LibcHeap::LibcHeap(mem::AddressSpace& space, LibcHeapConfig cfg)
    : space_(space), cfg_(cfg) {
  IBP_CHECK(is_pow2(cfg_.align) && cfg_.header % cfg_.align == 0,
            "header must preserve alignment");
}

TimePs LibcHeap::grow(std::uint64_t need_bytes) {
  const std::uint64_t bytes =
      std::max(align_up(need_bytes, kSmallPageSize), cfg_.slab_bytes);
  mem::Mapping& m = space_.map(bytes, mem::PageKind::Small);
  arenas_.emplace(m.va_base, m.length);
  free_by_addr_.emplace(m.va_base, m.length);
  stats_.regions_mapped += 1;
  stats_.bytes_mapped += m.length;
  return cfg_.costs.mmap_syscall +
         (m.length / kSmallPageSize) * cfg_.costs.fault_small;
}

OpResult LibcHeap::allocate_aligned(std::uint64_t size,
                                    std::uint64_t alignment) {
  IBP_CHECK(size > 0, "zero-byte allocation");
  IBP_CHECK(alignment == 0 || is_pow2(alignment),
            "alignment must be a power of two");
  const std::uint64_t align = std::max<std::uint64_t>(alignment, cfg_.align);
  TimePs cost = cfg_.costs.op_base;

  // Large requests bypass the arenas entirely (glibc mmap threshold).
  if (size >= cfg_.mmap_threshold) {
    mem::Mapping& m =
        space_.map(size + cfg_.header + align, mem::PageKind::Small);
    cost += cfg_.costs.mmap_syscall +
            (m.length / kSmallPageSize) * cfg_.costs.fault_small;
    const VirtAddr payload = align_up(m.va_base + cfg_.header, align);
    live_.emplace(payload, Live{m.length, size, true, m.va_base, m.va_base});
    stats_.allocs += 1;
    stats_.bytes_mapped += m.length;
    stats_.regions_mapped += 1;
    stats_.bytes_live += m.length;
    stats_.bytes_live_peak =
        std::max(stats_.bytes_live_peak, stats_.bytes_live);
    return {payload, cost};
  }

  // A block is usable if the aligned payload plus size fits inside it.
  auto payload_of = [&](VirtAddr va) {
    return align_up(va + cfg_.header, align);
  };
  auto fits = [&](VirtAddr va, std::uint64_t bytes) {
    const VirtAddr payload = payload_of(va);
    return payload + size <= va + bytes;
  };
  std::uint64_t steps = 0;
  auto fit = free_by_addr_.end();
  for (auto it = free_by_addr_.begin(); it != free_by_addr_.end(); ++it) {
    ++steps;
    if (fits(it->first, it->second)) {
      fit = it;
      break;
    }
  }
  if (fit == free_by_addr_.end()) {
    cost += grow(size + cfg_.header + align);
    for (auto it = free_by_addr_.begin(); it != free_by_addr_.end(); ++it) {
      ++steps;
      if (fits(it->first, it->second)) {
        fit = it;
        break;
      }
    }
    IBP_CHECK(fit != free_by_addr_.end());
  }
  cost += steps * cfg_.costs.per_scan_step;
  stats_.scan_steps += steps;

  const VirtAddr va = fit->first;
  const std::uint64_t have = fit->second;
  const VirtAddr payload = payload_of(va);
  const std::uint64_t need =
      align_up(payload + size - va, cfg_.align);
  free_by_addr_.erase(fit);
  if (have > need + cfg_.header) {
    free_by_addr_.emplace(va + need, have - need);
    cost += cfg_.costs.split;
    stats_.splits += 1;
  }
  const std::uint64_t block = have > need + cfg_.header ? need : have;
  live_.emplace(payload, Live{block, size, false, 0, va});
  stats_.allocs += 1;
  stats_.bytes_live += block;
  stats_.bytes_live_peak = std::max(stats_.bytes_live_peak, stats_.bytes_live);
  return {payload, cost};
}

OpResult LibcHeap::deallocate(VirtAddr addr) {
  auto it = live_.find(addr);
  IBP_CHECK(it != live_.end(), "free of unknown libc block " << std::hex
                                                             << addr);
  const Live blk = it->second;
  live_.erase(it);
  stats_.frees += 1;
  stats_.bytes_live -= blk.bytes;
  TimePs cost = cfg_.costs.op_base;

  if (blk.mmapped) {
    // glibc-style dynamic threshold: this size pattern is recurring, so
    // serve it from the arenas next time.
    cfg_.mmap_threshold = std::min(
        std::max(cfg_.mmap_threshold, blk.requested + 1),
        cfg_.mmap_threshold_max);
    space_.unmap(blk.map_base);
    return {addr, cost + cfg_.costs.mmap_syscall};
  }

  VirtAddr va = blk.block_va;
  std::uint64_t bytes = blk.bytes;

  // Eager coalescing with both neighbours (within the same arena).
  const auto arena = std::prev(arenas_.upper_bound(va));
  const VirtAddr abase = arena->first;
  const VirtAddr aend = abase + arena->second;

  auto next = free_by_addr_.lower_bound(va);
  if (next != free_by_addr_.end() && next->first == va + bytes &&
      next->first < aend) {
    bytes += next->second;
    free_by_addr_.erase(next);
    cost += cfg_.costs.coalesce;
    stats_.coalesces += 1;
  }
  auto prev = free_by_addr_.lower_bound(va);
  if (prev != free_by_addr_.begin()) {
    --prev;
    if (prev->first + prev->second == va && prev->first >= abase) {
      va = prev->first;
      bytes += prev->second;
      free_by_addr_.erase(prev);
      cost += cfg_.costs.coalesce;
      stats_.coalesces += 1;
    }
  }
  free_by_addr_.emplace(va, bytes);
  return {addr, cost};
}

bool LibcHeap::owns(VirtAddr addr) const {
  auto it = arenas_.upper_bound(addr);
  if (it != arenas_.begin()) {
    --it;
    if (addr < it->first + it->second) return true;
  }
  // mmapped blocks are looked up directly.
  return live_.count(addr) != 0;
}

std::uint64_t LibcHeap::block_size(VirtAddr addr) const {
  auto it = live_.find(addr);
  IBP_CHECK(it != live_.end(), "block_size of unknown block");
  return it->second.requested;
}

void LibcHeap::check_invariants() const {
  VirtAddr prev_end = 0;
  for (const auto& [va, bytes] : free_by_addr_) {
    IBP_CHECK(bytes > 0, "empty free block");
    IBP_CHECK(va >= prev_end, "overlapping free blocks");
    prev_end = va + bytes;
    const auto arena = arenas_.upper_bound(va);
    IBP_CHECK(arena != arenas_.begin(), "free block outside arenas");
    const auto& [abase, alen] = *std::prev(arena);
    IBP_CHECK(va + bytes <= abase + alen, "free block crosses arena end");
  }
  for (const auto& [payload, blk] : live_) {
    if (blk.mmapped) continue;
    const VirtAddr va = blk.block_va;
    auto it = free_by_addr_.upper_bound(va + blk.bytes - 1);
    if (it != free_by_addr_.begin()) {
      --it;
      IBP_CHECK(it->first + it->second <= va ||
                    it->first >= va + blk.bytes,
                "live/free overlap");
    }
  }
}

}  // namespace ibp::hugepage
