#pragma once

// ibp_rpc — a request/response serving layer over the simulated MPI
// transport, exercising the paper's data-placement machinery on a
// datacenter-style workload instead of HPC collectives:
//
//   * requests are framed with a fixed 24-byte wire header and carried
//     over the eager path; queued small requests coalesce into one
//     gather work request whose SGE budget comes from the rank's
//     placement engine (BufferPlan::max_sges) — the §7 scatter/gather
//     feature applied to RPC batching,
//   * request and response slot rings are placed via the engine under
//     the dedicated roles Role::RpcRing / Role::RpcResponse, so per-role
//     policy overrides (ClusterConfig::placement_role_policies) steer
//     serving buffers independently of the workload heap,
//   * flow control is credit-based (a client bounds its un-responded
//     requests), admission control sheds load at the server with an
//     explicit Overloaded status instead of queueing without bound, and
//     accepted requests drain through per-tenant two-class priority
//     queues (latency-sensitive ahead of bulk, tenants round-robin),
//   * responses that fit a slot ride the batched eager path; larger
//     ones take the rendezvous path on a per-request tag, exactly the
//     split the paper measures registration costs on.
//
// Everything runs in virtual time on one simulated rank per endpoint:
// RpcServer::serve() is the server rank's program; RpcClient is polled
// from the client rank's program (see ibp::loadgen for generators).

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ibp/common/stats.hpp"
#include "ibp/common/types.hpp"
#include "ibp/hca/config.hpp"
#include "ibp/mpi/comm.hpp"
#include "ibp/ringchan/ringchan.hpp"
#include "ibp/sim/engine.hpp"
#include "ibp/telemetry/registry.hpp"

namespace ibp::telemetry {
class RequestTracer;
}

namespace ibp::rpc {

/// Request priority class. Latency-sensitive requests flush ahead of
/// bulk at the client and are served ahead of bulk at the server.
enum class Class : std::uint8_t { Latency = 0, Bulk = 1 };

/// Response status.
enum class Status : std::uint8_t {
  Ok = 0,
  /// Admission control shed the request: the server's accepted-request
  /// queue was at RpcConfig::server_queue_cap, so instead of queueing
  /// without bound it answered immediately with this status.
  Overloaded = 1,
  /// The client gave up on the request: it exhausted its retransmission
  /// budget without a response (RpcConfig::fail_timed_out), or the link
  /// was abandoned after its server was declared dead (the fabric
  /// failover path). Local verdict — the server never answered.
  TimedOut = 2,
};

/// On-the-wire record header (request and response direction). A batch
/// is the concatenation of (WireHeader, payload) records.
struct WireHeader {
  std::uint64_t id = 0;            // client-assigned, echoed by responses
  std::uint32_t payload = 0;       // payload bytes following this header
  std::uint32_t response_cap = 0;  // request: response bytes the client
                                   // expects; large response: actual size
  std::uint32_t tenant = 0;
  std::uint8_t cls = 0;     // Class
  std::uint8_t status = 0;  // Status (response direction)
  std::uint16_t flags = 0;
};
static_assert(sizeof(WireHeader) == 24, "wire header is 24 bytes");

inline constexpr std::uint16_t kFlagClose = 1;  // client is done; no reply
inline constexpr std::uint16_t kFlagLarge = 2;  // response body follows on
                                                // its own tag (rendezvous)
inline constexpr std::uint16_t kFlagStripe = 4; // payload starts with a
                                                // fabric stripe sub-header
/// Reserved trace-context bit: the request belongs to the per-request
/// tracing stream (core::ClusterConfig::request_trace). Echoed on the
/// response and propagated through fabric stripe segments. The trace id
/// itself never travels — (src rank, dst rank, rpc id) resolves the
/// record through the hub's wire index — so the header stays 24 bytes
/// and timing is identical with tracing on or off.
inline constexpr std::uint16_t kFlagTraced = 8;
/// Ring-channel control record (RpcConfig::rdma_response). Request
/// direction: the payload is the client's response-ring descriptor
/// (ringchan::RingDescriptor). Response direction: the payload is the
/// server's credit-word descriptor (ringchan::CreditDescriptor). Control
/// records bypass admission, stats and the request/response drain
/// accounting.
inline constexpr std::uint16_t kFlagRing = 16;

inline constexpr int kReqTag = 0x21000000;
inline constexpr int kRspTag = 0x22000000;
/// Tag a large (rendezvous) response body travels on.
inline constexpr int large_tag(std::uint64_t id) {
  return 0x23000000 | static_cast<int>(id & 0xFFFFF);
}

struct RpcConfig {
  /// Coalesce queued requests into one gather WR. Off, every request is
  /// its own message (one header SGE + one payload SGE per WR).
  bool batching = true;
  std::uint32_t max_batch_requests = 16;
  /// Wire bytes (headers included) that force a flush. Must fit the
  /// eager path; the placement plan's max_sges further splits the WR.
  std::uint64_t max_batch_bytes = 4 * kKiB;
  /// Virtual-time age of the oldest queued request that forces a flush
  /// on the next poll, so a trickle of requests is not held hostage by
  /// the count/bytes thresholds.
  TimePs flush_timeout = us(5);
  /// Credit-based flow control: a client keeps at most this many
  /// un-responded requests on the wire; flushes wait for credits.
  std::uint32_t credits = 64;
  /// Client-side bound on queued-but-unsent requests. submit() beyond
  /// it rejects locally (ClientStats::rejected) — open-loop generators
  /// observe backpressure instead of buffering without bound.
  std::uint32_t client_queue_cap = 256;
  /// Server admission bound on accepted-but-unserved requests. Beyond
  /// it, requests are shed with Status::Overloaded.
  std::uint32_t server_queue_cap = 128;
  /// Per-request payload bound (slot capacity). Responses above it take
  /// the large path (rendezvous on a per-request tag).
  std::uint32_t max_payload = 2 * kKiB;
  /// Application service time: base + per-byte over the request payload.
  TimePs service_base = us(2);
  std::uint64_t service_per_byte_ps = 250;  // 250 ps/B = 4 GB/s
  /// Per-tenant QoS: with either nonzero, Latency and Bulk requests draw
  /// from distinct per-tenant credit pools (latency_credits and
  /// bulk_credits un-responded requests per tenant and class) instead of
  /// competing for the shared window alone, so a bulk-heavy tenant can
  /// never starve latency-class credits. `credits` stays a hard cap on
  /// total inflight either way. Both zero (the default) is the legacy
  /// shared-pool behaviour, bit-exact with earlier runs.
  std::uint32_t latency_credits = 0;
  std::uint32_t bulk_credits = 0;
  /// Request timeout: an un-responded request older than this (measured
  /// from its flush, doubling on every attempt) is retransmitted, up to
  /// max_retries times. The transport never loses a message end-to-end
  /// (RC retransmission and Repost recovery sit below), so retries rescue
  /// tail latency under fault-injected delay; the duplicate response the
  /// original eventually produces is counted and dropped. 0 = no
  /// timeouts, the legacy behaviour.
  TimePs request_timeout = 0;
  std::uint32_t max_retries = 1;
  /// With request_timeout armed: a request that exhausts max_retries
  /// without a response completes locally with Status::TimedOut (credits
  /// freed, a late response dropped as a duplicate) instead of waiting
  /// for the transport forever. The failure-detection primitive the
  /// fabric health monitor builds on; off (the default) preserves the
  /// legacy wait-forever behaviour bit-exactly.
  bool fail_timed_out = false;
  /// Dispatcher-fed worker pool: with N > 0 the server rank spawns N sim
  /// tracks that pull parsed requests from the admission queue and run
  /// service + handler concurrently (in virtual time), while the calling
  /// track becomes a dispatcher doing ingest/parse/flush/reclaim. 0 (the
  /// default) serves inline on the calling track — the legacy behaviour,
  /// bit-exact with earlier runs.
  std::uint32_t server_workers = 0;
  /// How worker tracks share the server's QPs/CQs (see hca::ShareMode):
  /// SharedLocked charges lock + cache-bounce arbitration per post/poll,
  /// PerThreadQp gives each worker its own response slot ring (placement-
  /// visible footprint) and uncontended posts, Dispatcher funnels every
  /// response through the dispatcher track at dispatcher_handoff cost.
  hca::ShareMode share_mode = hca::ShareMode::SharedLocked;
  /// Hand-off cost per response pushed from a worker track to the
  /// dispatcher track (ShareMode::Dispatcher only): queue write + wakeup.
  TimePs dispatcher_handoff = ns(400);
  /// One-sided response fast path (EXT-RDMA): the client owns a
  /// placement-planned ring slab (Role::RingSlab) the server RDMA-writes
  /// response records into; the client discovers them by polling ring
  /// memory — no response batching, no posted receive on the hot path —
  /// and returns credit by RDMA-writing its consumed-up-to counter.
  /// Responses that find the ring out of credit fall back to the batched
  /// two-sided path. Off (the default) is bit-inert.
  bool rdma_response = false;
  /// Response-ring slab bytes per (client, server) pair when
  /// rdma_response is on (grown automatically if the largest response
  /// record would not leave credit slack).
  std::uint64_t response_ring_bytes = 64 * kKiB;
};

/// One completed request, as observed by the client.
struct Completion {
  std::uint64_t id = 0;
  Status status = Status::Ok;
  TimePs latency = 0;  // submit() to response parse, virtual time
  std::vector<std::uint8_t> payload;  // response bytes (empty when shed)
};

struct ClientStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;  // local queue full at submit()
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;  // completions with Status::Overloaded
  std::uint64_t large_responses = 0;
  std::uint64_t credit_stalls = 0;  // flushes deferred for want of credits
  std::uint64_t qos_stalls = 0;     // queued requests skipped for want of
                                    // per-tenant class credits
  std::uint64_t retries = 0;        // timed-out requests retransmitted
  std::uint64_t duplicates = 0;     // late responses dropped after a retry
  std::uint64_t timed_out = 0;      // requests failed with Status::TimedOut
  std::uint64_t ring_completions = 0;  // responses parsed from the ring
  std::uint64_t ring_credit_returns = 0;  // credit words RDMA-written back
};

struct ServerStats {
  std::uint64_t batches_in = 0;
  std::uint64_t requests_in = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t served = 0;
  std::uint64_t responses = 0;
  std::uint64_t resp_batches = 0;
  std::uint64_t large_responses = 0;
  std::uint64_t queue_peak = 0;
  std::uint64_t closes = 0;
  std::uint64_t discarded = 0;  // records dropped while crashed (no reply)
  std::uint64_t ring_responses = 0;   // responses RDMA-written into rings
  std::uint64_t ring_fallbacks = 0;   // ring out of credit -> batched path
};

/// What the server hands the application handler.
struct RequestView {
  std::uint32_t tenant = 0;
  Class cls = Class::Latency;
  const std::uint8_t* payload = nullptr;
  std::uint32_t payload_len = 0;
  std::uint32_t response_cap = 0;
  /// Request wire flags, passed through verbatim (kFlagStripe marks a
  /// fabric stripe sub-header at the start of the payload).
  std::uint16_t flags = 0;
};

/// Application handler: fill `out` (capacity `out_cap` = max(response_cap,
/// payload_len, 1)) and return the response length (<= out_cap). The
/// default handler echoes the payload, padded/truncated to response_cap
/// when the request asks for a specific response size.
using Handler = std::function<std::uint32_t(const RequestView&,
                                            std::uint8_t* out,
                                            std::uint32_t out_cap)>;

/// The handler RpcServer installs when given none: echo the payload,
/// padded or truncated to response_cap when the request asks for a
/// specific response size. Exposed so wrappers (ibp::fabric) can fall
/// through to the same behaviour.
Handler default_handler();

class RpcClient {
 public:
  RpcClient(mpi::Comm& comm, int server, RpcConfig cfg = {});
  ~RpcClient();

  /// Enqueue one request. Returns the request id, or 0 when the client
  /// queue is full (request rejected, counted in stats().rejected).
  /// `payload` may be empty; `response_cap` asks the server for a
  /// response of that size (0 = echo-sized). `flags` travel verbatim in
  /// the wire header (kFlagStripe marks fabric stripe framing).
  std::uint64_t submit(std::span<const std::uint8_t> payload,
                       std::uint32_t response_cap = 0,
                       Class cls = Class::Latency, std::uint32_t tenant = 0,
                       std::uint16_t flags = 0);

  /// Non-blocking progress: reclaim send slots, flush on thresholds or
  /// the flush_timeout deadline, ingest arrived response batches.
  void poll();

  bool completed(std::uint64_t id) const { return done_.count(id) != 0; }

  /// Completion record for `id`, or nullptr while it is outstanding.
  /// Non-blocking and side-effect free — usable from wait_until
  /// predicates (tracked closed-loop workers watch their own ids while
  /// another track runs the poll loop).
  const Completion* find_completion(std::uint64_t id) const {
    const auto it = done_.find(id);
    return it == done_.end() ? nullptr : &it->second;
  }

  /// Block (in virtual time) until `id` completes; returns its record.
  const Completion& wait(std::uint64_t id);

  /// Block until at least one completion newer than the last
  /// take_completions() call exists (requires work outstanding).
  void wait_some();

  /// Completions (in completion order) since the previous call.
  std::vector<Completion> take_completions();

  /// Force-flush queued requests now (thresholds bypassed), reclaiming
  /// send slots and retransmitting timed-out requests first. Multi-link
  /// callers (ibp::fabric) use it before blocking on response arrival.
  void flush();

  /// Flush everything and wait for every outstanding response.
  void drain();

  /// drain(), then tell the server this client is finished. The client
  /// is unusable afterwards.
  void close();

  std::uint64_t outstanding() const {
    return inflight_.size() + queued_[0].size() + queued_[1].size();
  }
  const ClientStats& stats() const { return stats_; }
  /// Latency of Ok completions, nanosecond units.
  const LogHistogram& latency() const { return lat_; }
  const RpcConfig& config() const { return cfg_; }
  mpi::Comm& comm() const { return *comm_; }

  /// The posted response receive, or null when nothing is inflight.
  /// Exposed so a multi-link caller (ibp::fabric) can block on "any of my
  /// links answered" with one waitany instead of serialising on one link.
  const mpi::Req& response_req() const { return rsp_req_; }

  /// Fail every queued and inflight request locally with Status::TimedOut,
  /// right now — the fabric drain step after its health monitor declares
  /// this link's server dead. Requires fail_timed_out. The link stays
  /// usable (the transport is healthy; only the peer process is gone), so
  /// re-admission probes and close() still work.
  void abandon();

  /// Earliest armed retransmit/expiry deadline among inflight requests,
  /// or nullopt. Side-effect free — a multi-link caller's wait_until
  /// predicate uses it so link timeouts fire even when no transport event
  /// is pending (a dead server produces none).
  std::optional<TimePs> next_deadline() const;

  /// Whether the one-sided response ring is active on this link. A
  /// multi-link caller must then block with a wait_until composite
  /// (response_req + next_ring_visible + transport events) instead of
  /// waitany on response_req alone: ring responses never complete a recv.
  bool ring_enabled() const { return ring_rx_ != nullptr; }

  /// Virtual arrival time of the earliest ring record not yet visible,
  /// or nullopt (also when the tier is off). Side-effect free.
  std::optional<TimePs> next_ring_visible() const {
    return ring_rx_ != nullptr ? ring_rx_->next_visible() : std::nullopt;
  }

 private:
  struct Pending {
    std::uint64_t id = 0;
    std::uint32_t slot = 0;
    std::uint64_t wire = 0;  // header + payload bytes
    TimePs t = 0;            // submit time (latency zero point)
    std::uint32_t tenant = 0;
    bool retry = false;  // retransmission of an already-inflight id
  };
  struct Inflight {
    TimePs t0 = 0;        // submit time (latency zero point)
    TimePs deadline = 0;  // next timeout check (0 = not armed)
    std::uint32_t attempts = 0;
    std::uint32_t tenant = 0;
    std::uint8_t cls = 0;
    std::uint32_t response_cap = 0;
    std::uint16_t flags = 0;
    /// Request-trace id (0 = untraced), resolved from the hub's wire
    /// index at first flush and carried so the response parse can close
    /// the record without a lookup.
    std::uint64_t trace = 0;
    /// Copy kept for retransmission; only populated when
    /// cfg_.request_timeout is armed.
    std::vector<std::uint8_t> payload;
  };
  struct SentBatch {
    mpi::Req req;
    std::vector<std::uint32_t> slots;
  };

  VirtAddr slot_va(std::uint32_t slot) const;
  void reclaim_batches();
  /// Flush queued requests while thresholds (or `force`) say so and
  /// credits allow. Latency-class requests flush ahead of bulk.
  void maybe_flush(bool force);
  /// QoS admission: may this queued request be put on the wire now?
  bool class_credit_ok(const Pending& p, int cls) const;
  /// Retransmit inflight requests whose timeout deadline passed.
  void check_timeouts();
  /// Complete inflight request `id` locally with Status::TimedOut.
  void expire(std::uint64_t id);
  /// Block until a response arrival, transport event or timeout deadline
  /// (whichever is earliest), then ingest non-blockingly. The
  /// fail_timed_out replacement for blocking inside the transport.
  void progress_block();
  void ensure_rsp_posted();
  /// Ingest one arrived response batch; returns false if none arrived.
  bool try_ingest(bool blocking);
  void parse_responses(std::uint64_t len);
  /// Parse one response record at `rec` (header + body), shared between
  /// the batched two-sided path and the ring fast path so completion,
  /// duplicate, large-response and trace handling are identical.
  void parse_one(VirtAddr rec);
  /// Sweep the response ring: parse every visible record, release ring
  /// space and RDMA-write the credit word back when due. Returns true if
  /// anything was parsed.
  bool try_ring_ingest();
  void register_metrics();

  mpi::Comm* comm_;
  int server_;
  RpcConfig cfg_;
  /// Per-request tracing hub (null = tracing disabled, bit-inert).
  telemetry::RequestTracer* hub_ = nullptr;
  std::uint64_t slot_bytes_ = 0;
  std::uint32_t nslots_ = 0;
  VirtAddr ring_ = 0;    // request slot ring (Role::RpcRing)
  VirtAddr rspbuf_ = 0;  // response-batch landing buffer
  std::uint64_t rsp_cap_ = 0;
  std::vector<std::uint32_t> free_slots_;
  std::deque<Pending> queued_[2];  // unsent, by class
  std::uint64_t queued_bytes_ = 0;
  std::map<std::uint64_t, Inflight> inflight_;
  /// Per-(tenant, class) inflight counts; only maintained under QoS.
  std::map<std::pair<std::uint32_t, std::uint8_t>, std::uint32_t>
      class_inflight_;
  std::vector<SentBatch> sent_;
  bool reclaiming_ = false;  // reclaim_batches is not reentrant
  mpi::Req rsp_req_;  // posted iff inflight work may still answer
  /// Request records put on the wire / response records parsed. With
  /// retries armed these diverge by the duplicate responses still in
  /// flight; drain() waits until they match so no response batch is left
  /// unreceived at teardown. Records expired with Status::TimedOut are
  /// forgiven (expired_records_) — a dead server never answers them.
  std::uint64_t flushed_records_ = 0;
  std::uint64_t parsed_records_ = 0;
  std::uint64_t expired_records_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Completion> done_;
  std::deque<const Completion*> fresh_;  // completion order, not yet taken
  ClientStats stats_;
  LogHistogram lat_;
  std::vector<telemetry::ProbeHandle> probes_;
  bool closed_ = false;
  /// Response ring (cfg_.rdma_response): receiver half owned here, the
  /// server RDMA-writes response records in. Null when the tier is off.
  std::unique_ptr<ringchan::RingReceiver> ring_rx_;
  std::vector<ringchan::RingReceiver::Record> ring_recs_;  // poll scratch
};

class RpcServer {
 public:
  /// `clients` are the ranks that will connect; serve() runs until each
  /// of them sent its close record and every response drained.
  RpcServer(mpi::Comm& comm, std::vector<int> clients, RpcConfig cfg = {},
            Handler handler = {});
  ~RpcServer();

  void serve();

  const ServerStats& stats() const { return stats_; }
  const RpcConfig& config() const { return cfg_; }
  /// Accepted-but-unserved requests right now (a congestion signal the
  /// fabric layer exports as a telemetry probe).
  std::uint64_t queue_depth() const { return queued_; }

 private:
  struct Item {
    std::uint32_t client = 0;  // index into clients_
    std::uint64_t id = 0;
    std::uint32_t tenant = 0;
    Class cls = Class::Latency;
    std::uint32_t response_cap = 0;
    std::uint16_t flags = 0;
    TimePs t = 0;  // accepted-at time (worker wakeup predicate)
    std::uint64_t trace = 0;  // request-trace id (0 = untraced)
    std::vector<std::uint8_t> payload;
  };
  struct RspRec {
    std::uint32_t slot = 0;
    std::uint64_t wire = 0;
  };
  struct SentBatch {
    mpi::Req req;
    std::vector<std::uint32_t> slots;
  };
  struct LargeSend {
    mpi::Req req;
    VirtAddr buf = 0;
  };
  /// One response-side posting lane: a slot ring plus its per-client
  /// pending queues and in-flight batches. Lane 0 is the server's shared
  /// ring (the only lane unless ShareMode::PerThreadQp gives each worker
  /// its own — multiplying the placement-visible ring footprint).
  struct RspLane {
    VirtAddr ring = 0;
    std::vector<std::uint32_t> free_slots;
    std::vector<std::deque<RspRec>> pending;   // per client
    std::vector<std::uint64_t> pending_bytes;  // per client
    std::vector<SentBatch> sent;
  };
  /// A served response handed from a worker track to the dispatcher
  /// track (ShareMode::Dispatcher).
  struct Handoff {
    std::uint32_t client = 0;
    WireHeader hdr;
    TimePs t = 0;  // hand-off time (dispatcher wakeup predicate)
    std::vector<std::uint8_t> body;
  };

  VirtAddr rsp_slot_va(const RspLane& lane, std::uint32_t slot) const;
  VirtAddr recv_va(std::uint32_t client) const;
  void post_recv(std::uint32_t client);
  /// Non-blocking: ingest every arrived request batch.
  void ingest();
  void parse_batch(std::uint32_t client, std::uint64_t len);
  void shed(std::uint32_t client, const WireHeader& hdr);
  std::uint64_t queued_total() const;
  /// Serve the highest-priority queued request (per-tenant round-robin
  /// inside a class, Latency class first).
  void serve_one();
  bool pop_next(Item& out);
  /// Service + handler + response path for one accepted request, using
  /// `scratch` for handler output and `lane` for the response ring.
  void serve_item(const Item& it, std::vector<std::uint8_t>& scratch,
                  RspLane& lane, bool via_dispatcher);
  void enqueue_response(RspLane& lane, std::uint32_t client,
                        const WireHeader& hdr, const std::uint8_t* payload);
  /// Ring fast path (cfg_.rdma_response): RDMA-write the response record
  /// straight into the client's ring slab, bypassing the slot/batch
  /// machinery. Returns false (caller falls back to the batched path)
  /// when the client never sent a ring descriptor, the ring is out of
  /// credit, or the server is crashed.
  bool try_ring_response(std::uint32_t client, const WireHeader& hdr,
                         const std::uint8_t* payload);
  std::uint32_t take_rsp_slot(RspLane& lane);
  void flush_client(RspLane& lane, std::uint32_t client, bool force);
  void flush_all(bool force);
  /// Sweep completed response batches (all lanes) and large sends,
  /// returning their slots/buffers. Non-blocking.
  void reclaim_sent();
  void register_metrics();
  /// Is this rank's server process crashed right now (a fault-plan
  /// crash directive without a later recover)? While crashed the server
  /// ingests wire traffic (the transport below is healthy — only the
  /// process is gone) but discards every request silently: no response,
  /// no shed, exactly the black hole a failed peer looks like. Close
  /// records are still honoured so runs terminate deterministically.
  bool crashed_now() const;

  /// Legacy inline loop (cfg_.server_workers == 0): the calling track
  /// ingests, serves and flushes by itself.
  void serve_inline();
  /// Dispatcher-fed worker pool (cfg_.server_workers > 0).
  void serve_pooled();
  void worker_main(sim::Context& sc, std::uint32_t w);
  /// Earliest accepted-at time among queued items (worker wakeup).
  std::optional<TimePs> earliest_work() const;
  void drain_handoffs();
  RspLane& worker_lane(std::uint32_t w);
  void make_lane(RspLane& lane);
  void drop_lane(RspLane& lane);

  mpi::Comm* comm_;
  std::vector<int> clients_;
  RpcConfig cfg_;
  Handler handler_;
  /// Per-request tracing hub (null = tracing disabled, bit-inert).
  telemetry::RequestTracer* hub_ = nullptr;
  std::uint64_t slot_bytes_ = 0;
  std::uint64_t recv_cap_ = 0;
  std::uint32_t n_rsp_slots_ = 0;
  VirtAddr recv_region_ = 0;  // one landing slot per client (Role::RpcRing)
  std::vector<RspLane> lanes_;      // [0] = shared response ring
  std::vector<mpi::Req> rreqs_;     // per client; null once closed
  std::vector<bool> open_;
  std::uint32_t open_clients_ = 0;
  // Two-class priority queues, per tenant, served round-robin.
  std::map<std::uint32_t, std::deque<Item>> queues_[2];
  std::uint32_t rr_cursor_[2] = {0, 0};
  std::uint64_t queued_ = 0;  // accepted, unserved
  std::vector<LargeSend> large_;
  bool reclaiming_ = false;  // reclaim_sent is not reentrant
  std::vector<std::uint8_t> scratch_;  // handler output staging (inline)
  // --- worker-pool state (cfg_.server_workers > 0 only) ---
  std::vector<std::vector<std::uint8_t>> wscratch_;  // per-worker staging
  std::deque<Handoff> handoffs_;  // worker -> dispatcher responses
  std::uint32_t busy_workers_ = 0;
  bool stopping_ = false;
  TimePs stop_time_ = 0;
  TimePs worker_event_ = 0;  // earliest un-acknowledged worker signal
  ServerStats stats_;
  std::vector<telemetry::ProbeHandle> probes_;
  /// Per-client ring sender halves (cfg_.rdma_response); an entry stays
  /// null until that client's kFlagRing descriptor record arrives.
  std::vector<std::unique_ptr<ringchan::RingSender>> ring_tx_;
  std::vector<mpi::Req> ring_writes_;  // outstanding one-sided responses
};

}  // namespace ibp::rpc
