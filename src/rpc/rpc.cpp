#include "ibp/rpc/rpc.hpp"

#include <algorithm>

#include "ibp/common/check.hpp"
#include "ibp/core/cluster.hpp"
#include "ibp/fault/fault.hpp"
#include "ibp/telemetry/reqtrace.hpp"

namespace ibp::rpc {

namespace {

void store_header(core::RankEnv& env, VirtAddr va, const WireHeader& h) {
  std::memcpy(env.host_ptr<std::uint8_t>(va, sizeof(WireHeader)), &h,
              sizeof(WireHeader));
}

WireHeader load_header(core::RankEnv& env, VirtAddr va) {
  WireHeader h;
  std::memcpy(&h, env.host_ptr<std::uint8_t>(va, sizeof(WireHeader)),
              sizeof(WireHeader));
  return h;
}

/// Ring geometry for the response fast path: every response record
/// ([WireHeader | payload]) must fit, and the slab must leave the
/// credit-slack headroom ringchan::check_config demands. Both endpoints
/// derive it from the same RpcConfig, so descriptors always agree.
ringchan::RingConfig response_ring_cfg(const RpcConfig& cfg) {
  ringchan::RingConfig rc;
  rc.max_record =
      static_cast<std::uint32_t>(sizeof(WireHeader)) + cfg.max_payload;
  rc.slab_bytes = cfg.response_ring_bytes;
  const std::uint64_t rec = ringchan::record_bytes(rc.max_record);
  while (rc.slab_bytes - rc.slab_bytes / rc.credit_div < rec)
    rc.slab_bytes *= 2;
  return rc;
}

}  // namespace

Handler default_handler() {
  return [](const RequestView& rq, std::uint8_t* out, std::uint32_t cap) {
    // Echo, padded or truncated to the size the request asked for.
    const std::uint32_t want =
        rq.response_cap != 0 ? rq.response_cap : rq.payload_len;
    const std::uint32_t n = std::min(want, cap);
    const std::uint32_t c = std::min(rq.payload_len, n);
    std::memcpy(out, rq.payload, c);
    std::memset(out + c, 0, n - c);
    return n;
  };
}

// ---------------------------------------------------------------------------
// RpcClient

RpcClient::RpcClient(mpi::Comm& comm, int server, RpcConfig cfg)
    : comm_(&comm),
      server_(server),
      cfg_(cfg),
      hub_(comm.env().cluster().request_tracer()) {
  slot_bytes_ = sizeof(WireHeader) + cfg_.max_payload;
  IBP_CHECK(cfg_.max_batch_bytes >= slot_bytes_,
            "max_batch_bytes must hold one full request record");
  IBP_CHECK(cfg_.max_batch_bytes <= comm.config().eager_threshold,
            "request batches must fit the eager path");
  IBP_CHECK(cfg_.credits > 0 && cfg_.max_batch_requests > 0,
            "degenerate rpc config");
  nslots_ = cfg_.client_queue_cap + cfg_.credits + 4;
  core::RankEnv& env = comm_->env();
  ring_ = env.alloc(static_cast<std::uint64_t>(nslots_) * slot_bytes_,
                    placement::Role::RpcRing);
  rsp_cap_ = std::max<std::uint64_t>(cfg_.max_batch_bytes, slot_bytes_);
  rspbuf_ = env.alloc(rsp_cap_, placement::Role::RpcRing);
  free_slots_.reserve(nslots_);
  for (std::uint32_t s = nslots_; s > 0; --s) free_slots_.push_back(s - 1);
  register_metrics();
  if (cfg_.rdma_response) {
    // One-sided response fast path: allocate the receiver half and tell
    // the server where to write with a kFlagRing control record — the
    // first record on the request stream, so the server connects its
    // sender half before any response is generated. The server answers
    // with its credit-word descriptor, parsed in parse_one() whichever
    // path it arrives on.
    IBP_CHECK(cfg_.max_payload >= sizeof(ringchan::RingDescriptor),
              "max_payload too small for the ring handshake record");
    ring_rx_ = std::make_unique<ringchan::RingReceiver>(
        env, response_ring_cfg(cfg_));
    const ringchan::RingDescriptor rd = ring_rx_->descriptor();
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    WireHeader h;
    h.payload = sizeof(rd);
    h.flags = kFlagRing;
    const VirtAddr va = slot_va(slot);
    store_header(env, va, h);
    std::memcpy(
        env.host_ptr<std::uint8_t>(va + sizeof(WireHeader), sizeof(rd)), &rd,
        sizeof(rd));
    env.touch_stream(va, sizeof(WireHeader) + sizeof(rd));
    comm_->wait(comm_->isend_gather({{va, sizeof(WireHeader) + sizeof(rd)}},
                                    server_, kReqTag));
    free_slots_.push_back(slot);
  }
}

RpcClient::~RpcClient() {
  for (auto& p : probes_) p.release();
  core::RankEnv& env = comm_->env();
  env.dealloc(rspbuf_);
  env.dealloc(ring_);
}

VirtAddr RpcClient::slot_va(std::uint32_t slot) const {
  return ring_ + static_cast<std::uint64_t>(slot) * slot_bytes_;
}

std::uint64_t RpcClient::submit(std::span<const std::uint8_t> payload,
                                std::uint32_t response_cap, Class cls,
                                std::uint32_t tenant, std::uint16_t flags) {
  IBP_CHECK(!closed_, "submit on closed rpc client");
  IBP_CHECK(payload.size() <= cfg_.max_payload,
            "request payload exceeds RpcConfig::max_payload");
  reclaim_batches();
  const std::uint64_t depth = queued_[0].size() + queued_[1].size();
  if (depth >= cfg_.client_queue_cap || free_slots_.empty()) {
    ++stats_.rejected;
    return 0;
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();

  core::RankEnv& env = comm_->env();
  const bool traced = hub_ != nullptr && hub_->active();
  WireHeader h;
  h.id = next_id_++;
  h.payload = static_cast<std::uint32_t>(payload.size());
  h.response_cap = response_cap;
  h.tenant = tenant;
  h.cls = static_cast<std::uint8_t>(cls);
  h.flags = flags;
  if (traced) h.flags |= kFlagTraced;
  const VirtAddr va = slot_va(slot);
  store_header(env, va, h);
  if (!payload.empty())
    std::memcpy(env.host_ptr<std::uint8_t>(va + sizeof(WireHeader),
                                           payload.size()),
                payload.data(), payload.size());
  const std::uint64_t wire = sizeof(WireHeader) + payload.size();
  env.touch_stream(va, wire);  // the application writes the request

  if (traced) {
    // Record opened at the queue-push time (the latency zero point);
    // the wire binding lets both endpoints resolve it by rpc id.
    const std::uint64_t tr =
        hub_->begin(comm_->rank(), tenant, h.cls, env.now());
    hub_->bind_wire(tr, comm_->rank(), server_, h.id);
  }
  queued_[h.cls].push_back({h.id, slot, wire, env.now(), tenant, false});
  queued_bytes_ += wire;
  ++stats_.submitted;
  maybe_flush(false);
  return h.id;
}

void RpcClient::reclaim_batches() {
  // test() can advance virtual time (transport progress), during which
  // another track of this rank may append to sent_ — so never hold a
  // reference across it, and make concurrent entry a no-op (the track
  // already inside finishes the scan).
  if (reclaiming_) return;
  reclaiming_ = true;
  std::size_t i = 0;
  while (i < sent_.size()) {
    const mpi::Req req = sent_[i].req;  // keep alive across realloc
    if (comm_->test(req)) {
      for (std::uint32_t s : sent_[i].slots) free_slots_.push_back(s);
      sent_.erase(sent_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  reclaiming_ = false;
}

bool RpcClient::class_credit_ok(const Pending& p, int cls) const {
  const std::uint32_t pool =
      cls == 0 ? cfg_.latency_credits : cfg_.bulk_credits;
  if (pool == 0) return true;  // class unbounded; cfg_.credits still caps
  const auto it =
      class_inflight_.find({p.tenant, static_cast<std::uint8_t>(cls)});
  return it == class_inflight_.end() || it->second < pool;
}

void RpcClient::maybe_flush(bool force) {
  core::RankEnv& env = comm_->env();
  const std::uint32_t nmax = cfg_.batching ? cfg_.max_batch_requests : 1;
  const bool qos = cfg_.latency_credits != 0 || cfg_.bulk_credits != 0;
  for (;;) {
    const std::uint64_t nq = queued_[0].size() + queued_[1].size();
    if (nq == 0) return;
    TimePs oldest = ~TimePs{0};
    for (const auto& q : queued_)
      if (!q.empty()) oldest = std::min(oldest, q.front().t);
    const bool due = force || !cfg_.batching ||
                     nq >= cfg_.max_batch_requests ||
                     queued_bytes_ >= cfg_.max_batch_bytes ||
                     env.now() >= oldest + cfg_.flush_timeout;
    if (!due) return;
    if (inflight_.size() >= cfg_.credits) {
      ++stats_.credit_stalls;
      return;  // responses must free credits first
    }
    const std::uint64_t room = cfg_.credits - inflight_.size();

    std::vector<mpi::Seg> segs;
    std::vector<std::uint32_t> slots;
    std::vector<std::uint64_t> fresh_traces;
    std::uint64_t bytes = 0;
    bool qos_blocked = false;
    while (segs.size() < nmax && segs.size() < room) {
      // First eligible request, latency class first: retransmits are
      // always eligible (their credit is already held), fresh requests
      // must clear their per-tenant class pool.
      int cls = -1;
      std::size_t idx = 0;
      for (int c = 0; c < 2 && cls < 0; ++c) {
        const std::deque<Pending>& q = queued_[c];
        for (std::size_t i = 0; i < q.size(); ++i) {
          if (!q[i].retry && qos && !class_credit_ok(q[i], c)) {
            qos_blocked = true;
            continue;
          }
          cls = c;
          idx = i;
          break;
        }
      }
      if (cls < 0) break;
      std::deque<Pending>& q = queued_[cls];
      if (!segs.empty() && bytes + q[idx].wire > cfg_.max_batch_bytes) break;
      const Pending p = q[idx];
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
      queued_bytes_ -= p.wire;
      if (p.retry && inflight_.find(p.id) == inflight_.end()) {
        // The original answered while this retransmit sat queued.
        free_slots_.push_back(p.slot);
        continue;
      }
      segs.push_back({slot_va(p.slot), p.wire});
      slots.push_back(p.slot);
      bytes += p.wire;
      auto [it, fresh] = inflight_.try_emplace(p.id);
      Inflight& inf = it->second;
      if (fresh) {
        const WireHeader h = load_header(env, slot_va(p.slot));
        inf.t0 = p.t;
        inf.tenant = h.tenant;
        inf.cls = h.cls;
        inf.response_cap = h.response_cap;
        inf.flags = h.flags;
        if (cfg_.request_timeout != 0 && h.payload != 0) {
          const auto* pp = env.host_ptr<std::uint8_t>(
              slot_va(p.slot) + sizeof(WireHeader), h.payload);
          inf.payload.assign(pp, pp + h.payload);
        }
        if (qos) ++class_inflight_[{inf.tenant, inf.cls}];
        if (hub_ != nullptr && (h.flags & kFlagTraced) != 0) {
          inf.trace = hub_->wire_trace(comm_->rank(), server_, p.id);
          if (inf.trace != 0) fresh_traces.push_back(inf.trace);
        }
      }
      ++inf.attempts;
      if (cfg_.request_timeout != 0)
        inf.deadline =
            env.now() + (cfg_.request_timeout
                         << std::min<std::uint32_t>(inf.attempts - 1, 10));
    }
    if (qos_blocked && segs.empty()) ++stats_.qos_stalls;
    if (segs.empty()) return;
    flushed_records_ += segs.size();
    SentBatch b;
    b.req = comm_->isend_gather(segs, server_, kReqTag);
    // Batch posted: close the client-queue span; the wire time until
    // server admission is the net_request stage.
    for (const std::uint64_t tr : fresh_traces)
      hub_->stage_mark(tr, telemetry::Stage::ClientQueue, comm_->rank(),
                       env.now());
    b.slots = std::move(slots);
    sent_.push_back(std::move(b));
    ++stats_.batches;
    stats_.batched_requests += segs.size();
    ensure_rsp_posted();
  }
}

void RpcClient::check_timeouts() {
  if (cfg_.request_timeout == 0) return;
  core::RankEnv& env = comm_->env();
  const TimePs now = env.now();
  std::vector<std::uint64_t> expired;
  for (auto& [id, inf] : inflight_) {
    if (inf.deadline == 0 || now < inf.deadline) continue;
    if (inf.attempts > cfg_.max_retries) {
      if (cfg_.fail_timed_out) {
        expired.push_back(id);  // completes TimedOut below the loop
      } else {
        inf.deadline = 0;  // out of retries; the transport will deliver
      }
      continue;
    }
    if (free_slots_.empty()) return;  // retry on the next poll instead
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    WireHeader h;
    h.id = id;
    h.payload = static_cast<std::uint32_t>(inf.payload.size());
    h.response_cap = inf.response_cap;
    h.tenant = inf.tenant;
    h.cls = inf.cls;
    h.flags = inf.flags;
    const VirtAddr va = slot_va(slot);
    store_header(env, va, h);
    if (!inf.payload.empty())
      std::memcpy(env.host_ptr<std::uint8_t>(va + sizeof(WireHeader),
                                             inf.payload.size()),
                  inf.payload.data(), inf.payload.size());
    const std::uint64_t wire = sizeof(WireHeader) + inf.payload.size();
    env.touch_stream(va, wire);
    queued_[inf.cls & 1].push_back({id, slot, wire, inf.t0, inf.tenant, true});
    queued_bytes_ += wire;
    inf.deadline = 0;  // re-armed with backoff when the retransmit flushes
    ++stats_.retries;
    if (hub_ != nullptr) hub_->retry(inf.trace);
  }
  for (std::uint64_t id : expired) expire(id);
}

void RpcClient::expire(std::uint64_t id) {
  core::RankEnv& env = comm_->env();
  const auto it = inflight_.find(id);
  IBP_CHECK(it != inflight_.end(), "expiring a request not inflight");
  Inflight& inf = it->second;
  Completion c;
  c.id = id;
  c.status = Status::TimedOut;
  c.latency = env.now() - inf.t0;
  // The server will never answer the flushed copies; forgive them so
  // drain() does not wait for response records that cannot arrive. A
  // late response (the server was merely slow) still lands safely in the
  // duplicate path — the id stays in done_.
  expired_records_ += inf.attempts;
  if (cfg_.latency_credits != 0 || cfg_.bulk_credits != 0) {
    const auto ci = class_inflight_.find({inf.tenant, inf.cls});
    if (ci != class_inflight_.end() && --ci->second == 0)
      class_inflight_.erase(ci);
  }
  if (inf.trace != 0) {
    hub_->stage_mark(inf.trace, telemetry::Stage::NetResponse, comm_->rank(),
                     env.now());
    hub_->end(inf.trace, static_cast<std::uint8_t>(Status::TimedOut),
              env.now());
  }
  inflight_.erase(it);
  ++stats_.timed_out;
  ++stats_.completed;
  auto [pos, fresh] = done_.emplace(id, std::move(c));
  IBP_CHECK(fresh, "duplicate response id");
  fresh_.push_back(&pos->second);
}

void RpcClient::abandon() {
  IBP_CHECK(cfg_.fail_timed_out,
            "abandon() requires RpcConfig::fail_timed_out");
  core::RankEnv& env = comm_->env();
  // Queued-but-unsent requests first: retransmit copies just drop (their
  // inflight entry is expired below), fresh requests complete TimedOut
  // without ever touching the wire.
  for (auto& q : queued_) {
    while (!q.empty()) {
      const Pending p = std::move(q.front());
      q.pop_front();
      queued_bytes_ -= p.wire;
      free_slots_.push_back(p.slot);
      if (p.retry) continue;
      const WireHeader h = load_header(env, slot_va(p.slot));
      Completion c;
      c.id = p.id;
      c.status = Status::TimedOut;
      c.latency = env.now() - p.t;
      if (hub_ != nullptr && (h.flags & kFlagTraced) != 0) {
        const std::uint64_t tr =
            hub_->wire_trace(comm_->rank(), server_, p.id);
        if (tr != 0) {
          hub_->stage_mark(tr, telemetry::Stage::NetResponse, comm_->rank(),
                           env.now());
          hub_->end(tr, static_cast<std::uint8_t>(Status::TimedOut),
                    env.now());
        }
      }
      ++stats_.timed_out;
      ++stats_.completed;
      auto [pos, fresh] = done_.emplace(p.id, std::move(c));
      IBP_CHECK(fresh, "duplicate response id");
      fresh_.push_back(&pos->second);
    }
  }
  while (!inflight_.empty()) expire(inflight_.begin()->first);
}

std::optional<TimePs> RpcClient::next_deadline() const {
  if (cfg_.request_timeout == 0) return std::nullopt;
  std::optional<TimePs> best;
  for (const auto& [id, inf] : inflight_) {
    if (inf.deadline != 0 && (!best || inf.deadline < *best))
      best = inf.deadline;
  }
  return best;
}

void RpcClient::ensure_rsp_posted() {
  // Post while any wire record still owes a response — inflight requests,
  // plus duplicate responses a retransmit provoked. Expired records are
  // forgiven: their server is presumed gone and will not answer.
  if (rsp_req_ == nullptr &&
      (!inflight_.empty() ||
       parsed_records_ + expired_records_ < flushed_records_))
    rsp_req_ = comm_->irecv(rspbuf_, rsp_cap_, server_, kRspTag);
}

bool RpcClient::try_ingest(bool blocking) {
  ensure_rsp_posted();
  if (ring_rx_ == nullptr) {
    if (rsp_req_ == nullptr) return false;
    if (blocking) {
      comm_->wait(rsp_req_);
    } else if (!comm_->test(rsp_req_)) {
      return false;
    }
    const std::uint64_t len = rsp_req_->received;
    rsp_req_.reset();
    parse_responses(len);
    ensure_rsp_posted();
    return true;
  }
  // Ring fast path armed: responses may arrive one-sided (ring memory
  // turning visible) or two-sided (fallback batches). Blocking inside
  // the transport would miss the former, so block on whichever event is
  // earliest and re-sweep.
  for (;;) {
    bool got = try_ring_ingest();
    if (rsp_req_ != nullptr && comm_->test(rsp_req_)) {
      const std::uint64_t len = rsp_req_->received;
      rsp_req_.reset();
      parse_responses(len);
      ensure_rsp_posted();
      got = true;
    }
    if (got || !blocking) return got;
    comm_->env().sim().wait_until([this]() -> std::optional<TimePs> {
      std::optional<TimePs> best;
      if (rsp_req_ != nullptr && rsp_req_->done()) best = rsp_req_->done_at;
      const std::optional<TimePs> vis = ring_rx_->next_visible();
      if (vis && (!best || *vis < *best)) best = vis;
      const std::optional<TimePs> ev = comm_->earliest_event_time();
      if (ev && (!best || *ev < *best)) best = ev;
      return best;
    });
  }
}

bool RpcClient::try_ring_ingest() {
  if (ring_rx_ == nullptr) return false;
  ring_recs_.clear();
  ring_rx_->poll(comm_->env().now(), ring_recs_);
  for (const ringchan::RingReceiver::Record& rec : ring_recs_) {
    parse_one(rec.payload);
    ring_rx_->release(rec);
    ++stats_.ring_completions;
  }
  if (ring_rx_->credit_due()) {
    comm_->post_one_sided(server_, ring_rx_->make_credit_wr());
    ++stats_.ring_credit_returns;
  }
  return !ring_recs_.empty();
}

void RpcClient::parse_responses(std::uint64_t len) {
  core::RankEnv& env = comm_->env();
  std::uint64_t off = 0;
  while (off < len) {
    const WireHeader h = load_header(env, rspbuf_ + off);
    parse_one(rspbuf_ + off);
    off += sizeof(WireHeader) + h.payload;
    IBP_CHECK(off <= len, "malformed response batch");
  }
}

void RpcClient::parse_one(VirtAddr rec) {
  core::RankEnv& env = comm_->env();
  const WireHeader h = load_header(env, rec);
  const VirtAddr body = rec + sizeof(WireHeader);
  if ((h.flags & kFlagRing) != 0) {
    // Control response: the server's credit-word descriptor. Not an
    // application record — no drain accounting, no completion.
    ringchan::CreditDescriptor cd;
    IBP_CHECK(h.payload == sizeof(cd), "malformed ring control response");
    std::memcpy(&cd, env.host_ptr<std::uint8_t>(body, sizeof(cd)),
                sizeof(cd));
    ring_rx_->connect_credit(cd);
    return;
  }
  ++parsed_records_;

  auto it = inflight_.find(h.id);
  if (it == inflight_.end()) {
    // A retransmit raced the original response; this copy is the
    // duplicate. Drop it (draining any out-of-band body so the
    // server's send completes).
    IBP_CHECK(done_.count(h.id) != 0, "response for unknown request id");
    ++stats_.duplicates;
    if ((h.flags & kFlagLarge) != 0) {
      const std::uint64_t blen = h.response_cap;
      const VirtAddr buf = env.alloc(std::max<std::uint64_t>(blen, 64),
                                     placement::Role::RpcResponse);
      comm_->recv(buf, blen, server_, large_tag(h.id));
      env.dealloc(buf);
    }
    return;
  }
  const TimePs t0 = it->second.t0;
  const std::uint64_t trace = it->second.trace;
  if (cfg_.latency_credits != 0 || cfg_.bulk_credits != 0) {
    const auto ci =
        class_inflight_.find({it->second.tenant, it->second.cls});
    if (ci != class_inflight_.end() && --ci->second == 0)
      class_inflight_.erase(ci);
  }
  inflight_.erase(it);
  Completion c;
  c.id = h.id;
  c.status = static_cast<Status>(h.status);
  c.latency = env.now() - t0;

  if ((h.flags & kFlagLarge) != 0) {
    // Body travels out-of-band on its own tag; sized above the slot
    // cap it takes the rendezvous path on a Role::RpcResponse buffer.
    const std::uint64_t blen = h.response_cap;
    const VirtAddr buf = env.alloc(std::max<std::uint64_t>(blen, 64),
                                   placement::Role::RpcResponse);
    comm_->recv(buf, blen, server_, large_tag(h.id));
    c.payload.resize(blen);
    std::memcpy(c.payload.data(), env.host_ptr<std::uint8_t>(buf, blen),
                blen);
    env.touch_stream(buf, blen);  // the application reads the response
    env.dealloc(buf);
    c.latency = env.now() - t0;  // body transfer counts toward latency
    ++stats_.large_responses;
  } else if (h.payload != 0) {
    const auto* p = env.host_ptr<std::uint8_t>(body, h.payload);
    c.payload.assign(p, p + h.payload);
  }

  if (trace != 0) {
    hub_->stage_mark(trace, telemetry::Stage::NetResponse, comm_->rank(),
                     env.now());
    hub_->end(trace, h.status, env.now());
  }
  if (c.status == Status::Ok) {
    lat_.add(static_cast<std::uint64_t>(c.latency / 1000));  // ps -> ns
  } else {
    ++stats_.shed;
  }
  ++stats_.completed;
  auto [pos, fresh] = done_.emplace(h.id, std::move(c));
  IBP_CHECK(fresh, "duplicate response id");
  fresh_.push_back(&pos->second);
}

void RpcClient::poll() {
  if (closed_) return;
  reclaim_batches();
  check_timeouts();
  maybe_flush(false);
  while (try_ingest(false)) {
  }
}

void RpcClient::progress_block() {
  // Block until the next thing that can change client state: a response
  // arrival, any transport event, or the earliest retransmit/expiry
  // deadline. Never blocks inside the transport itself, so timeouts keep
  // firing against a server that will never answer (fail_timed_out).
  ensure_rsp_posted();
  comm_->env().sim().wait_until([this]() -> std::optional<TimePs> {
    std::optional<TimePs> best;
    if (rsp_req_ != nullptr && rsp_req_->done()) best = rsp_req_->done_at;
    if (ring_rx_ != nullptr) {
      const std::optional<TimePs> vis = ring_rx_->next_visible();
      if (vis && (!best || *vis < *best)) best = vis;
    }
    const std::optional<TimePs> ev = comm_->earliest_event_time();
    if (ev && (!best || *ev < *best)) best = ev;
    const std::optional<TimePs> dl = next_deadline();
    if (dl && (!best || *dl < *best)) best = dl;
    return best;
  });
  while (try_ingest(false)) {
  }
}

const Completion& RpcClient::wait(std::uint64_t id) {
  while (!completed(id)) {
    reclaim_batches();
    check_timeouts();
    maybe_flush(true);
    if (cfg_.fail_timed_out) {
      if (completed(id)) break;
      progress_block();
      continue;
    }
    IBP_CHECK(!inflight_.empty(), "waiting on an id that was never submitted");
    try_ingest(true);
  }
  return done_.at(id);
}

void RpcClient::wait_some() {
  IBP_CHECK(outstanding() > 0, "wait_some with nothing outstanding");
  while (fresh_.empty()) {
    reclaim_batches();
    check_timeouts();
    maybe_flush(true);
    if (cfg_.fail_timed_out) {
      if (!fresh_.empty()) break;
      progress_block();
      continue;
    }
    try_ingest(true);
  }
}

std::vector<Completion> RpcClient::take_completions() {
  std::vector<Completion> out;
  out.reserve(fresh_.size());
  for (const Completion* c : fresh_) out.push_back(*c);
  fresh_.clear();
  return out;
}

void RpcClient::flush() {
  reclaim_batches();
  check_timeouts();
  maybe_flush(true);
}

void RpcClient::drain() {
  if (cfg_.fail_timed_out) {
    // Failure-aware drain: wait for queued and inflight requests only —
    // every one of them resolves (response or local TimedOut expiry).
    // Response records still owed by the wire (duplicate copies a dead
    // server discarded) are not waited for; the receive stays posted so
    // a straggler from a merely-slow server still has a landing buffer.
    for (;;) {
      reclaim_batches();
      check_timeouts();
      maybe_flush(true);
      while (try_ingest(false)) {
      }
      if (queued_[0].empty() && queued_[1].empty() && inflight_.empty())
        break;
      progress_block();
    }
    for (auto& b : sent_) {
      comm_->wait(b.req);
      for (std::uint32_t s : b.slots) free_slots_.push_back(s);
    }
    sent_.clear();
    return;
  }
  while (!queued_[0].empty() || !queued_[1].empty() || !inflight_.empty() ||
         parsed_records_ + expired_records_ < flushed_records_) {
    reclaim_batches();
    check_timeouts();
    maybe_flush(true);
    if (!inflight_.empty() ||
        parsed_records_ + expired_records_ < flushed_records_)
      try_ingest(true);
  }
  for (auto& b : sent_) {
    comm_->wait(b.req);
    for (std::uint32_t s : b.slots) free_slots_.push_back(s);
  }
  sent_.clear();
}

void RpcClient::close() {
  if (closed_) return;
  drain();
  core::RankEnv& env = comm_->env();
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  WireHeader h;
  h.flags = kFlagClose;
  store_header(env, slot_va(slot), h);
  comm_->wait(comm_->isend_gather({{slot_va(slot), sizeof(WireHeader)}},
                                  server_, kReqTag));
  free_slots_.push_back(slot);
  closed_ = true;
}

void RpcClient::register_metrics() {
  auto& m = comm_->env().cluster().metrics();
  probes_.push_back(
      m.probe("rpc.requests", [this] { return double(stats_.submitted); }));
  probes_.push_back(
      m.probe("rpc.rejected", [this] { return double(stats_.rejected); }));
  probes_.push_back(
      m.probe("rpc.batches", [this] { return double(stats_.batches); }));
  probes_.push_back(m.probe("rpc.batched_requests", [this] {
    return double(stats_.batched_requests);
  }));
  probes_.push_back(
      m.probe("rpc.completed", [this] { return double(stats_.completed); }));
  probes_.push_back(m.probe("rpc.credit_stalls", [this] {
    return double(stats_.credit_stalls);
  }));
  probes_.push_back(
      m.probe("rpc.qos_stalls", [this] { return double(stats_.qos_stalls); }));
  probes_.push_back(
      m.probe("rpc.retries", [this] { return double(stats_.retries); }));
  probes_.push_back(
      m.probe("rpc.duplicates", [this] { return double(stats_.duplicates); }));
  // Percentiles are per-rank metrics (summing percentiles across ranks
  // would be meaningless), hence the rank-qualified names.
  const std::string pre = "rpc.r" + std::to_string(comm_->rank()) + ".";
  probes_.push_back(
      m.probe(pre + "p50_us", [this] { return lat_.p50() / 1000.0; }));
  probes_.push_back(
      m.probe(pre + "p95_us", [this] { return lat_.p95() / 1000.0; }));
  probes_.push_back(
      m.probe(pre + "p99_us", [this] { return lat_.p99() / 1000.0; }));
  probes_.push_back(
      m.probe(pre + "samples", [this] { return double(lat_.count()); }));
  // Full quantile family (p50/p90/p99/max) under the histogram-probe
  // convention, so --metrics-out snapshots carry the same percentiles
  // loadgen --json reports.
  for (auto& p : telemetry::histogram_probes(m, pre + "latency", &lat_))
    probes_.push_back(std::move(p));
  if (cfg_.rdma_response) {
    // Registered only with the tier on, keeping default metric
    // snapshots byte-identical.
    probes_.push_back(m.probe("rpc.ring_completions", [this] {
      return double(stats_.ring_completions);
    }));
    probes_.push_back(m.probe("rpc.ring_credit_returns", [this] {
      return double(stats_.ring_credit_returns);
    }));
  }
}

// ---------------------------------------------------------------------------
// RpcServer

RpcServer::RpcServer(mpi::Comm& comm, std::vector<int> clients, RpcConfig cfg,
                     Handler handler)
    : comm_(&comm),
      clients_(std::move(clients)),
      cfg_(cfg),
      handler_(std::move(handler)),
      hub_(comm.env().cluster().request_tracer()) {
  IBP_CHECK(!clients_.empty(), "rpc server needs at least one client");
  slot_bytes_ = sizeof(WireHeader) + cfg_.max_payload;
  recv_cap_ = std::max<std::uint64_t>(cfg_.max_batch_bytes, slot_bytes_);
  IBP_CHECK(recv_cap_ <= comm.config().eager_threshold,
            "rpc batches must fit the eager path");
  if (!handler_) handler_ = default_handler();
  core::RankEnv& env = comm_->env();
  recv_region_ =
      env.alloc(recv_cap_ * clients_.size(), placement::Role::RpcRing);
  n_rsp_slots_ = cfg_.server_queue_cap + 2 * cfg_.max_batch_requests + 8;
  lanes_.emplace_back();
  make_lane(lanes_[0]);
  rreqs_.resize(clients_.size());
  open_.assign(clients_.size(), true);
  open_clients_ = static_cast<std::uint32_t>(clients_.size());
  for (std::uint32_t i = 0; i < clients_.size(); ++i) post_recv(i);
  if (cfg_.rdma_response) ring_tx_.resize(clients_.size());
  register_metrics();
}

RpcServer::~RpcServer() {
  for (auto& p : probes_) p.release();
  core::RankEnv& env = comm_->env();
  for (auto it = lanes_.rbegin(); it != lanes_.rend(); ++it)
    env.dealloc(it->ring);
  env.dealloc(recv_region_);
}

void RpcServer::make_lane(RspLane& lane) {
  core::RankEnv& env = comm_->env();
  lane.ring = env.alloc(static_cast<std::uint64_t>(n_rsp_slots_) * slot_bytes_,
                        placement::Role::RpcRing);
  lane.free_slots.reserve(n_rsp_slots_);
  for (std::uint32_t s = n_rsp_slots_; s > 0; --s)
    lane.free_slots.push_back(s - 1);
  lane.pending.resize(clients_.size());
  lane.pending_bytes.assign(clients_.size(), 0);
}

void RpcServer::drop_lane(RspLane& lane) {
  IBP_CHECK(lane.sent.empty(), "dropping a lane with inflight batches");
  comm_->env().dealloc(lane.ring);
}

RpcServer::RspLane& RpcServer::worker_lane(std::uint32_t w) {
  // PerThreadQp gives each worker its own slot ring (lanes_[1 + w]);
  // every other mode shares lane 0.
  if (cfg_.share_mode == hca::ShareMode::PerThreadQp &&
      lanes_.size() > 1 + w)
    return lanes_[1 + w];
  return lanes_[0];
}

VirtAddr RpcServer::rsp_slot_va(const RspLane& lane,
                                std::uint32_t slot) const {
  return lane.ring + static_cast<std::uint64_t>(slot) * slot_bytes_;
}

VirtAddr RpcServer::recv_va(std::uint32_t client) const {
  return recv_region_ + static_cast<std::uint64_t>(client) * recv_cap_;
}

void RpcServer::post_recv(std::uint32_t client) {
  rreqs_[client] =
      comm_->irecv(recv_va(client), recv_cap_, clients_[client], kReqTag);
}

bool RpcServer::crashed_now() const {
  core::RankEnv& env = comm_->env();
  fault::FaultInjector* inj = env.cluster().fault();
  if (inj == nullptr || !inj->has_crashes()) return false;
  return inj->server_crashed(env.node(), env.now());
}

void RpcServer::ingest() {
  for (std::uint32_t i = 0; i < clients_.size(); ++i) {
    while (rreqs_[i] != nullptr && comm_->test(rreqs_[i])) {
      const std::uint64_t len = rreqs_[i]->received;
      rreqs_[i].reset();
      parse_batch(i, len);
    }
  }
}

void RpcServer::parse_batch(std::uint32_t client, std::uint64_t len) {
  core::RankEnv& env = comm_->env();
  ++stats_.batches_in;
  const bool crashed = crashed_now();
  std::uint64_t off = 0;
  while (off < len) {
    const WireHeader h = load_header(env, recv_va(client) + off);
    const VirtAddr body = recv_va(client) + off + sizeof(WireHeader);
    off += sizeof(WireHeader) + h.payload;
    IBP_CHECK(off <= len, "malformed request batch");

    if ((h.flags & kFlagClose) != 0) {
      IBP_CHECK(open_[client], "double close from client");
      open_[client] = false;
      --open_clients_;
      ++stats_.closes;
      continue;
    }
    if ((h.flags & kFlagRing) != 0) {
      // Ring handshake: the payload is the client's response-ring
      // descriptor. Connect a sender half and answer with the credit
      // word the client RDMA-writes its consumed-up-to counter into.
      // Control records bypass admission and the request stats.
      ringchan::RingDescriptor rd;
      IBP_CHECK(!ring_tx_.empty() && h.payload == sizeof(rd),
                "malformed ring handshake record");
      std::memcpy(&rd, env.host_ptr<std::uint8_t>(body, sizeof(rd)),
                  sizeof(rd));
      auto tx =
          std::make_unique<ringchan::RingSender>(env, response_ring_cfg(cfg_));
      tx->connect(rd);
      const ringchan::CreditDescriptor cd = tx->credit_descriptor();
      ring_tx_[client] = std::move(tx);
      WireHeader rsp;
      rsp.payload = sizeof(cd);
      rsp.flags = kFlagRing;
      enqueue_response(lanes_[0], client, rsp,
                       reinterpret_cast<const std::uint8_t*>(&cd));
      continue;
    }
    ++stats_.requests_in;
    stats_.bytes_in += sizeof(WireHeader) + h.payload;
    if (crashed) {
      // The process is gone; the adapter below keeps completing wire
      // transfers but nothing consumes them. Silently discard — no
      // response, no shed — exactly the black hole a failed peer is.
      ++stats_.discarded;
      continue;
    }
    std::uint64_t trace = 0;
    if (hub_ != nullptr && (h.flags & kFlagTraced) != 0) {
      // Server admission: the net_request stage ends here whether the
      // request is accepted or shed (a retransmitted copy resolves to
      // the same record; its duplicate mark is ignored).
      trace = hub_->wire_trace(clients_[client], comm_->rank(), h.id);
      hub_->stage_mark(trace, telemetry::Stage::NetRequest, comm_->rank(),
                       env.now());
    }
    if (queued_ >= cfg_.server_queue_cap) {
      shed(client, h);
      continue;
    }
    Item it;
    it.client = client;
    it.id = h.id;
    it.tenant = h.tenant;
    it.cls = static_cast<Class>(h.cls);
    it.response_cap = h.response_cap;
    it.flags = h.flags;
    it.t = env.now();
    it.trace = trace;
    if (h.payload != 0) {
      const auto* p = env.host_ptr<std::uint8_t>(body, h.payload);
      it.payload.assign(p, p + h.payload);
    }
    queues_[h.cls & 1][h.tenant].push_back(std::move(it));
    ++queued_;
    ++stats_.accepted;
    stats_.queue_peak = std::max(stats_.queue_peak, queued_);
  }
  if (open_[client]) post_recv(client);
}

void RpcServer::shed(std::uint32_t client, const WireHeader& hdr) {
  ++stats_.shed;
  WireHeader rsp;
  rsp.id = hdr.id;
  rsp.tenant = hdr.tenant;
  rsp.cls = hdr.cls;
  rsp.status = static_cast<std::uint8_t>(Status::Overloaded);
  rsp.flags = hdr.flags & kFlagTraced;  // echo the trace-context bit
  enqueue_response(lanes_[0], client, rsp, nullptr);
}

std::uint64_t RpcServer::queued_total() const { return queued_; }

bool RpcServer::pop_next(Item& out) {
  for (int cls = 0; cls < 2; ++cls) {
    auto& qs = queues_[cls];
    if (qs.empty()) continue;
    // Round-robin over tenants: first tenant at or after the cursor,
    // wrapping to the smallest.
    auto it = qs.lower_bound(rr_cursor_[cls]);
    if (it == qs.end()) it = qs.begin();
    out = std::move(it->second.front());
    it->second.pop_front();
    rr_cursor_[cls] = it->first + 1;
    if (it->second.empty()) qs.erase(it);
    --queued_;
    return true;
  }
  return false;
}

void RpcServer::serve_one() {
  Item it;
  if (!pop_next(it)) return;
  if (crashed_now()) {
    // Accepted before the crash, never served: the queue died with the
    // process.
    ++stats_.discarded;
    return;
  }
  serve_item(it, scratch_, lanes_[0], /*via_dispatcher=*/false);
}

void RpcServer::serve_item(const Item& it, std::vector<std::uint8_t>& scratch,
                           RspLane& lane, bool via_dispatcher) {
  core::RankEnv& env = comm_->env();
  const hca::AdapterStats& adapter = env.state().node->adapter.stats();
  const TimePs arb0 = it.trace != 0 ? adapter.qp_contention_ps : 0;
  if (it.trace != 0)
    hub_->stage_mark(it.trace, telemetry::Stage::ServerQueue, comm_->rank(),
                     env.now());
  env.sim().advance(cfg_.service_base +
                    static_cast<TimePs>(it.payload.size()) *
                        cfg_.service_per_byte_ps);
  RequestView view;
  view.tenant = it.tenant;
  view.cls = it.cls;
  view.flags = it.flags;
  view.payload = it.payload.data();
  view.payload_len = static_cast<std::uint32_t>(it.payload.size());
  view.response_cap = it.response_cap;
  const std::uint32_t cap = std::max<std::uint32_t>(
      {it.response_cap, view.payload_len, 1});
  if (scratch.size() < cap) scratch.resize(cap);
  const std::uint32_t rlen = handler_(view, scratch.data(), cap);
  IBP_CHECK(rlen <= cap, "handler overflowed its response buffer");
  ++stats_.served;
  if (it.trace != 0)
    hub_->stage_mark(it.trace, telemetry::Stage::Service, comm_->rank(),
                     env.now());

  WireHeader rsp;
  rsp.id = it.id;
  rsp.tenant = it.tenant;
  rsp.cls = static_cast<std::uint8_t>(it.cls);
  rsp.status = static_cast<std::uint8_t>(Status::Ok);
  rsp.flags = it.flags & kFlagTraced;  // echo the trace-context bit
  if (rlen <= cfg_.max_payload) {
    rsp.payload = rlen;
    if (via_dispatcher) {
      // Hand the finished response to the dispatcher track, which owns
      // the posting path in ShareMode::Dispatcher. The hand-off pays the
      // queue write + wakeup; in exchange the dispatcher aggregates
      // responses from every worker into larger batches.
      env.sim().advance(cfg_.dispatcher_handoff);
      Handoff h;
      h.client = it.client;
      h.hdr = rsp;
      h.t = env.now();
      h.body.assign(scratch.data(), scratch.data() + rlen);
      handoffs_.push_back(std::move(h));
    } else {
      enqueue_response(lane, it.client, rsp, scratch.data());
    }
  } else {
    // Body goes out-of-band: the in-batch record only announces it, the
    // payload takes the eager/rendezvous split on its own tag from a
    // Role::RpcResponse buffer (the path the paper prices registration
    // on when it exceeds the rendezvous threshold).
    rsp.response_cap = rlen;
    rsp.flags |= kFlagLarge;
    if (via_dispatcher) {
      env.sim().advance(cfg_.dispatcher_handoff);
      Handoff h;
      h.client = it.client;
      h.hdr = rsp;
      h.t = env.now();
      handoffs_.push_back(std::move(h));
    } else {
      enqueue_response(lane, it.client, rsp, nullptr);
    }
    const VirtAddr buf =
        env.alloc(std::max<std::uint64_t>(rlen, 64),
                  placement::Role::RpcResponse);
    std::memcpy(env.host_ptr<std::uint8_t>(buf, rlen), scratch.data(), rlen);
    env.touch_stream(buf, rlen);  // the application writes the response
    LargeSend ls;
    ls.req = comm_->isend(buf, rlen, clients_[it.client], large_tag(it.id));
    ls.buf = buf;
    large_.push_back(std::move(ls));
    ++stats_.large_responses;
  }
  if (it.trace != 0)
    // Share-mode lock arbitration charged to this rank's adapter while
    // the request was in service (response posting included).
    hub_->add_arbitration(it.trace, adapter.qp_contention_ps - arb0);
}

std::uint32_t RpcServer::take_rsp_slot(RspLane& lane) {
  if (lane.free_slots.empty()) reclaim_sent();
  while (lane.free_slots.empty()) {
    flush_all(true);
    if (!lane.sent.empty()) {
      // Copy the Req: wait() blocks, and another track may reallocate
      // lane.sent (or reclaim this very batch) in the meantime.
      const mpi::Req req = lane.sent.front().req;
      comm_->wait(req);
    }
    reclaim_sent();
  }
  const std::uint32_t s = lane.free_slots.back();
  lane.free_slots.pop_back();
  return s;
}

bool RpcServer::try_ring_response(std::uint32_t client, const WireHeader& hdr,
                                  const std::uint8_t* payload) {
  if (ring_tx_.empty() || ring_tx_[client] == nullptr) return false;
  // Crashed: fall through to the batched path, whose pending queue
  // discards responses exactly like a dead process's send queue would.
  if (crashed_now()) return false;
  core::RankEnv& env = comm_->env();
  ringchan::RingSender& tx = *ring_tx_[client];
  const std::uint32_t wire =
      static_cast<std::uint32_t>(sizeof(WireHeader)) + hdr.payload;
  if (!tx.can_send(wire)) {
    tx.poll_credit(env.now());
    if (!tx.can_send(wire)) {
      ++stats_.ring_fallbacks;
      return false;
    }
  }
  IBP_CHECK(hdr.payload == 0 || payload != nullptr,
            "response record without body");
  std::uint8_t hb[sizeof(WireHeader)];
  std::memcpy(hb, &hdr, sizeof(WireHeader));
  auto wrs = tx.prepare(hb, sizeof(WireHeader), payload, hdr.payload);
  for (hca::SendWr& wr : wrs)
    ring_writes_.push_back(
        comm_->post_one_sided(clients_[client], std::move(wr), true));
  ++stats_.responses;
  ++stats_.ring_responses;
  return true;
}

void RpcServer::enqueue_response(RspLane& lane, std::uint32_t client,
                                 const WireHeader& hdr,
                                 const std::uint8_t* payload) {
  if (try_ring_response(client, hdr, payload)) return;
  core::RankEnv& env = comm_->env();
  const std::uint32_t slot = take_rsp_slot(lane);
  const VirtAddr va = rsp_slot_va(lane, slot);
  store_header(env, va, hdr);
  if (hdr.payload != 0) {
    IBP_CHECK(payload != nullptr, "response record without body");
    std::memcpy(env.host_ptr<std::uint8_t>(va + sizeof(WireHeader),
                                           hdr.payload),
                payload, hdr.payload);
  }
  const std::uint64_t wire = sizeof(WireHeader) + hdr.payload;
  env.touch_stream(va, wire);
  lane.pending[client].push_back({slot, wire});
  lane.pending_bytes[client] += wire;
  ++stats_.responses;
  flush_client(lane, client, false);
}

void RpcServer::flush_client(RspLane& lane, std::uint32_t client, bool force) {
  const std::uint32_t nmax = cfg_.batching ? cfg_.max_batch_requests : 1;
  auto& pend = lane.pending[client];
  if (!pend.empty() && crashed_now()) {
    // Responses still in the process's send queue die with it. Whatever
    // was already handed to the adapter (lane.sent) completes normally.
    for (const RspRec& r : pend) lane.free_slots.push_back(r.slot);
    stats_.discarded += pend.size();
    lane.pending_bytes[client] = 0;
    pend.clear();
    return;
  }
  for (;;) {
    if (pend.empty()) return;
    const bool due = force || !cfg_.batching || pend.size() >= nmax ||
                     lane.pending_bytes[client] >= cfg_.max_batch_bytes;
    if (!due) return;
    std::vector<mpi::Seg> segs;
    std::vector<std::uint32_t> slots;
    std::uint64_t bytes = 0;
    while (!pend.empty() && segs.size() < nmax) {
      const RspRec& r = pend.front();
      if (!segs.empty() && bytes + r.wire > cfg_.max_batch_bytes) break;
      segs.push_back({rsp_slot_va(lane, r.slot), r.wire});
      slots.push_back(r.slot);
      bytes += r.wire;
      lane.pending_bytes[client] -= r.wire;
      pend.pop_front();
    }
    SentBatch b;
    b.req = comm_->isend_gather(segs, clients_[client], kRspTag);
    b.slots = std::move(slots);
    lane.sent.push_back(std::move(b));
    ++stats_.resp_batches;
  }
}

void RpcServer::flush_all(bool force) {
  for (auto& lane : lanes_)
    for (std::uint32_t i = 0; i < clients_.size(); ++i)
      flush_client(lane, i, force);
}

void RpcServer::reclaim_sent() {
  // test() can advance virtual time (transport progress), during which
  // a worker track may append to a lane's sent vector or to large_ —
  // so never hold references across it, and make concurrent entry a
  // no-op (the track already inside finishes the scan).
  if (reclaiming_) return;
  reclaiming_ = true;
  for (auto& lane : lanes_) {
    std::size_t i = 0;
    while (i < lane.sent.size()) {
      const mpi::Req req = lane.sent[i].req;  // keep alive across realloc
      if (comm_->test(req)) {
        for (std::uint32_t s : lane.sent[i].slots)
          lane.free_slots.push_back(s);
        lane.sent.erase(lane.sent.begin() +
                        static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  std::size_t i = 0;
  while (i < large_.size()) {
    const mpi::Req req = large_[i].req;
    if (comm_->test(req)) {
      comm_->env().dealloc(large_[i].buf);
      large_.erase(large_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  i = 0;
  while (i < ring_writes_.size()) {
    const mpi::Req req = ring_writes_[i];
    if (comm_->test(req)) {
      ring_writes_.erase(ring_writes_.begin() +
                         static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  reclaiming_ = false;
}

std::optional<TimePs> RpcServer::earliest_work() const {
  std::optional<TimePs> best;
  for (int cls = 0; cls < 2; ++cls) {
    for (const auto& [tenant, q] : queues_[cls]) {
      if (q.empty()) continue;
      // Items within one tenant queue arrive in accept order, so the
      // front is that queue's earliest.
      if (!best || q.front().t < *best) best = q.front().t;
    }
  }
  return best;
}

void RpcServer::drain_handoffs() {
  // Hand-offs are pushed in nondecreasing virtual time (the engine admits
  // lanes in global time order), so draining front-to-back preserves the
  // workers' completion order.
  while (!handoffs_.empty()) {
    Handoff h = std::move(handoffs_.front());
    handoffs_.pop_front();
    enqueue_response(lanes_[0], h.client, h.hdr,
                     h.body.empty() ? nullptr : h.body.data());
  }
}

void RpcServer::serve() {
  if (cfg_.server_workers == 0) {
    serve_inline();
  } else {
    serve_pooled();
  }
  flush_all(true);
  for (auto& lane : lanes_) {
    for (auto& b : lane.sent) {
      comm_->wait(b.req);
      for (std::uint32_t s : b.slots) lane.free_slots.push_back(s);
    }
    lane.sent.clear();
  }
  for (auto& l : large_) {
    comm_->wait(l.req);
    comm_->env().dealloc(l.buf);
  }
  large_.clear();
  // One-sided response writes must retire before teardown: an error CQE
  // arriving after serve() returns would never be replayed, and the
  // client would wait on a record that was silently lost.
  for (auto& r : ring_writes_) comm_->wait(r);
  ring_writes_.clear();
  while (lanes_.size() > 1) {
    drop_lane(lanes_.back());
    lanes_.pop_back();
  }
}

void RpcServer::serve_inline() {
  while (open_clients_ > 0 || queued_ > 0) {
    ingest();
    if (queued_ == 0) {
      // Quiesce: nothing to serve — push out every pending response
      // before blocking, or the clients those responses unblock could
      // never send the next request.
      flush_all(true);
      reclaim_sent();
      if (open_clients_ == 0) break;
      // Block for the next message from any still-open client.
      std::vector<mpi::Req> live;
      std::vector<std::uint32_t> who;
      for (std::uint32_t i = 0; i < clients_.size(); ++i) {
        if (rreqs_[i] != nullptr) {
          live.push_back(rreqs_[i]);
          who.push_back(i);
        }
      }
      IBP_CHECK(!live.empty(), "open clients but no posted receives");
      const std::size_t idx = comm_->waitany(live);
      const std::uint32_t client = who[idx];
      const std::uint64_t len = rreqs_[client]->received;
      rreqs_[client].reset();
      parse_batch(client, len);
      continue;
    }
    serve_one();
  }
}

void RpcServer::serve_pooled() {
  core::RankEnv& env = comm_->env();
  env.verbs().set_share_mode(cfg_.share_mode);
  const std::uint32_t nw = cfg_.server_workers;
  wscratch_.assign(nw, {});
  if (cfg_.share_mode == hca::ShareMode::PerThreadQp) {
    // Per-worker response rings: uncontended posting lanes, at the price
    // of a placement-visible footprint multiplied by the worker count.
    lanes_.resize(1 + nw);
    for (std::uint32_t w = 0; w < nw; ++w) make_lane(lanes_[1 + w]);
  }
  stopping_ = false;
  busy_workers_ = 0;
  worker_event_ = 0;
  std::vector<sim::TrackId> tracks;
  tracks.reserve(nw);
  for (std::uint32_t w = 0; w < nw; ++w)
    tracks.push_back(env.sim().spawn_track(
        [this, w](sim::Context& sc) { worker_main(sc, w); }));

  // Dispatcher loop: this track ingests and parses request batches (the
  // admission queue feeds the worker tracks), posts handed-off responses
  // (ShareMode::Dispatcher), and reclaims completed batches. It blocks on
  // the earliest of: a pending hand-off, a worker-completion signal, or
  // the next transport event.
  for (;;) {
    ingest();
    drain_handoffs();
    reclaim_sent();
    worker_event_ = 0;
    if (queued_ == 0 && busy_workers_ == 0) {
      // Quiesce: every accepted request is served and acknowledged into
      // a response queue — force out partial batches so clients waiting
      // on credits can progress. While workers are busy, partial batches
      // keep accumulating instead (the Dispatcher mode's aggregation
      // advantage).
      flush_all(true);
      reclaim_sent();
      if (open_clients_ == 0 && handoffs_.empty()) break;
    }
    env.sim().wait_until([this]() -> std::optional<TimePs> {
      if (!handoffs_.empty()) return handoffs_.front().t;
      if (worker_event_ != 0) return worker_event_;
      std::optional<TimePs> best = comm_->earliest_event_time();
      // A request batch whose completing event a *worker's* progress
      // drained (while blocked inside the transport) is invisible to
      // earliest_event_time: the receive is already done. Watch the
      // posted receives themselves so the batch still gets parsed.
      for (const mpi::Req& r : rreqs_) {
        if (r != nullptr && r->done() && (!best || r->done_at < *best))
          best = r->done_at;
      }
      return best;
    });
  }
  stopping_ = true;
  stop_time_ = env.now();
  for (sim::TrackId t : tracks) env.sim().join_track(t);
}

void RpcServer::worker_main(sim::Context& sc, std::uint32_t w) {
  RspLane& lane = worker_lane(w);
  for (;;) {
    sc.wait_until([this]() -> std::optional<TimePs> {
      if (stopping_) return stop_time_;
      return earliest_work();
    });
    Item it;
    if (!pop_next(it)) {
      if (stopping_) break;
      continue;  // a lower-id worker won the race for this item
    }
    if (crashed_now()) {
      ++stats_.discarded;
      if (worker_event_ == 0) worker_event_ = sc.now();
      continue;
    }
    ++busy_workers_;
    serve_item(it, wscratch_[w], lane,
               cfg_.share_mode == hca::ShareMode::Dispatcher);
    --busy_workers_;
    // About to idle with no more queued work: push out this worker's
    // partial batches — a real worker thread does not sit on finished
    // responses. Under SharedLocked every such post arbitrates for the
    // shared QP (the cost the share-mode sweep measures); per-thread
    // lanes post uncontended. Dispatcher-mode workers own no lane.
    if (queued_ == 0 && cfg_.share_mode != hca::ShareMode::Dispatcher) {
      for (std::uint32_t c = 0; c < clients_.size(); ++c)
        flush_client(lane, c, true);
    }
    // Wake the dispatcher at the earliest completion it has not yet
    // acknowledged (virtual times are nondecreasing across lanes, so the
    // first unacknowledged signal is the earliest).
    if (worker_event_ == 0) worker_event_ = sc.now();
  }
}

void RpcServer::register_metrics() {
  auto& m = comm_->env().cluster().metrics();
  probes_.push_back(
      m.probe("rpc.batches_in", [this] { return double(stats_.batches_in); }));
  probes_.push_back(m.probe("rpc.requests_in", [this] {
    return double(stats_.requests_in);
  }));
  probes_.push_back(
      m.probe("rpc.accepted", [this] { return double(stats_.accepted); }));
  probes_.push_back(
      m.probe("rpc.shed", [this] { return double(stats_.shed); }));
  // Fleet-facing alias: benches report shed under the fabric schema
  // family name as well, summed across every server rank.
  probes_.push_back(
      m.probe("rpc.shed_total", [this] { return double(stats_.shed); }));
  probes_.push_back(
      m.probe("rpc.served", [this] { return double(stats_.served); }));
  probes_.push_back(
      m.probe("rpc.responses", [this] { return double(stats_.responses); }));
  probes_.push_back(m.probe("rpc.resp_batches", [this] {
    return double(stats_.resp_batches);
  }));
  probes_.push_back(m.probe("rpc.large_responses", [this] {
    return double(stats_.large_responses);
  }));
  probes_.push_back(
      m.probe("rpc.queue_peak", [this] { return double(stats_.queue_peak); }));
  probes_.push_back(
      m.probe("rpc.closes", [this] { return double(stats_.closes); }));
  if (cfg_.rdma_response) {
    probes_.push_back(m.probe("rpc.ring_responses", [this] {
      return double(stats_.ring_responses);
    }));
    probes_.push_back(m.probe("rpc.ring_fallbacks", [this] {
      return double(stats_.ring_fallbacks);
    }));
  }
  if (cfg_.server_workers > 0) {
    // Arbitration counters exist only for multi-threaded servers so that
    // single-threaded runs keep their metric snapshots byte-identical.
    const hca::Adapter* ad = &comm_->env().state().node->adapter;
    probes_.push_back(m.probe("hca.qp_contention_ps", [ad] {
      return double(ad->stats().qp_contention_ps);
    }));
    // Canonical name normalized to match hca.qp_contention_ps; the old
    // dotted name stays resolvable as an alias of the same slot.
    probes_.push_back(m.probe("hca.cq_poll_contention_ps", [ad] {
      return double(ad->stats().cq_poll_contention);
    }));
    m.alias("hca.cq_poll_contention", "hca.cq_poll_contention_ps");
  }
}

}  // namespace ibp::rpc
