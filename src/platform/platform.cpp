#include "ibp/platform/platform.hpp"

#include "ibp/common/check.hpp"

namespace ibp::platform {

PlatformConfig opteron_pcie_infinihost() {
  PlatformConfig p;
  p.name = "opteron";
  p.tbr_hz = 2.2e9;  // x86 rdtsc runs at core frequency
  p.ops_per_ns = 4.4;

  // Opteron DTLB: 544 four-KB entries (L1 40 + L2 512, rounded as the
  // paper does), but only 8 two-MB entries — the §5.2 capacity cliff.
  p.tlb.small_entries = 544;
  p.tlb.huge_entries = 8;
  p.tlb.walk_cost = ns(95);

  p.mem.stream_bw_bytes_per_ns = 5.2;   // dual-channel DDR400
  p.mem.dram_latency = ns(85);
  p.mem.cached_fraction = 0.55;

  hca::AdapterConfig& a = p.adapter;
  a.post_base = ns(640);        // ~1400 rdtsc ticks at 2.2 GHz
  a.post_per_sge = ns(10);
  a.poll_cqe = ns(90);
  a.poll_empty = ns(45);
  a.wqe_fetch = ns(280);
  a.dma_setup = ns(70);
  a.cqe_write = ns(150);
  a.ack_latency = ns(220);
  // PCIe x8: DMA reads ~4 GB/s — far above the IB link, so ATT stalls and
  // line traffic stay hidden under the wire for streaming transfers.
  a.dma_per_line = ns(16);
  a.burst_cross_penalty = ns(20);
  // InfiniHost caches translations in ICM with a small on-chip cache;
  // misses fetch the MTT entry across the bus. A few hundred KB of hot
  // 4 KB translations fit; a node's rotating bounce-buffer set does not.
  a.att_entries = 64;
  a.att_lookup = ns(5);
  a.att_miss = ns(150);
  // 4x SDR InfiniBand: ~950 MB/s payload per direction; IMB SendRecv
  // counts both directions, peaking near the paper's ~1750 MB/s.
  a.link_bw_bytes_per_ns = 0.95;
  a.mtu = 2048;
  a.pkt_overhead = ns(60);
  a.wire_latency = ns(550);
  a.reg_base = us(8);
  a.pin_per_page = ns(1200);
  a.trans_build_per_entry = ns(40);
  a.trans_ship_per_entry = ns(50);
  a.dereg_base = us(4);
  a.unpin_per_page = ns(280);

  p.shm_bw_bytes_per_ns = 2.6;
  p.shm_latency = ns(300);
  return p;
}

PlatformConfig xeon_pcix_infinihost() {
  PlatformConfig p;
  p.name = "xeon";
  p.tbr_hz = 2.4e9;
  p.ops_per_ns = 3.6;

  // Netburst Xeon DTLB: 64 four-KB entries; large pages share a small set.
  p.tlb.small_entries = 64;
  p.tlb.huge_entries = 8;
  p.tlb.walk_cost = ns(110);

  p.mem.stream_bw_bytes_per_ns = 3.2;
  p.mem.dram_latency = ns(110);
  p.mem.cached_fraction = 0.5;

  hca::AdapterConfig& a = p.adapter;
  a.post_base = ns(700);
  a.post_per_sge = ns(11);
  a.poll_cqe = ns(100);
  a.poll_empty = ns(50);
  a.wqe_fetch = ns(320);
  a.dma_setup = ns(80);
  a.cqe_write = ns(170);
  a.ack_latency = ns(240);
  // PCI-X 64/133: ~1.07 GB/s shared bus. One 64-byte read ≈ 60 ns, so the
  // DMA side runs neck-and-neck with the wire and every ATT miss costs
  // visible bandwidth — the §5.1 Xeon experiment.
  a.dma_per_line = ns(58);
  a.burst_cross_penalty = ns(40);
  a.att_entries = 1024;         // 4 MB of 4 KB translations
  a.att_lookup = ns(6);
  a.att_miss = ns(260);
  a.link_bw_bytes_per_ns = 0.95;
  a.mtu = 2048;
  a.pkt_overhead = ns(70);
  a.wire_latency = ns(600);
  a.reg_base = us(9);
  a.pin_per_page = ns(820);
  a.trans_build_per_entry = ns(45);
  a.trans_ship_per_entry = ns(60);
  a.dereg_base = us(4);
  a.unpin_per_page = ns(300);

  p.shm_bw_bytes_per_ns = 1.8;
  p.shm_latency = ns(420);
  return p;
}

PlatformConfig systemp_gx_ehca() {
  PlatformConfig p;
  p.name = "systemp";
  // POWER time base: the paper's §4 numbers are in TBR ticks. POWER5's TB
  // advances at ~512 MHz on these systems; with eHCA's hypervisor-mediated
  // doorbells a post of ~2.7 µs lands in the paper's 1300–1500 tick band.
  p.tbr_hz = 512e6;
  p.ops_per_ns = 3.3;

  // POWER5 ERAT/TLB: large translation arrays for both sizes; hugepage TLB
  // pressure is an Opteron story, not a System p one.
  p.tlb.small_entries = 1024;
  p.tlb.huge_entries = 256;
  p.tlb.walk_cost = ns(140);

  p.mem.stream_bw_bytes_per_ns = 6.0;
  p.mem.dram_latency = ns(95);
  p.mem.cached_fraction = 0.55;

  hca::AdapterConfig& a = p.adapter;
  a.post_base = ns(2650);       // ≈ 1360 TBR ticks at 512 MHz
  a.post_per_sge = ns(42);      // 128 SGEs ≈ 3× one SGE (§4)
  a.post_recv_base = ns(1900);
  a.poll_cqe = ns(260);
  a.poll_empty = ns(120);
  a.wqe_fetch = ns(700);
  a.dma_setup = ns(70);
  a.cqe_write = ns(340);
  a.ack_latency = ns(420);
  // eHCA DMA reads cross the hypervisor-owned GX bus: individually slow
  // and visibly alignment-sensitive (the §4 offset experiment was run on
  // this machine; the spread across offsets reaches ~8 %).
  a.dma_per_line = ns(100);
  a.burst_cross_penalty = ns(200);
  a.att_entries = 96;
  a.att_lookup = ns(8);
  // MTT fetch crosses the hypervisor-mediated GX path; on this DMA-bound
  // adapter, translation misses cost visible bandwidth (the paper's NAS
  // communication gains are largest on this machine).
  a.att_miss = ns(620);
  a.link_bw_bytes_per_ns = 0.95;
  a.mtu = 2048;
  a.pkt_overhead = ns(90);
  a.wire_latency = ns(700);
  a.reg_base = us(12);
  // Pinning crosses the hypervisor (H_REGISTER_RPAGES hcalls on eHCA),
  // far costlier per page than a bare get_user_pages.
  a.pin_per_page = ns(2500);
  a.trans_build_per_entry = ns(60);
  a.trans_ship_per_entry = ns(80);
  a.dereg_base = us(5);
  a.unpin_per_page = ns(350);

  p.shm_bw_bytes_per_ns = 3.2;
  p.shm_latency = ns(380);
  return p;
}

PlatformConfig by_name(const std::string& name) {
  if (name == "opteron") return opteron_pcie_infinihost();
  if (name == "xeon") return xeon_pcix_infinihost();
  if (name == "systemp") return systemp_gx_ehca();
  IBP_FAIL("unknown platform '" << name << "'");
}

}  // namespace ibp::platform
