#pragma once

// Calibrated platform models for the paper's three test systems (§5):
//
//   * AMD Opteron, Mellanox InfiniHost on PCI-Express (2 dual-core 2.2 GHz)
//   * Intel Xeon, Mellanox InfiniHost on PCI-X (2 HT processors, 2.4 GHz)
//   * IBM low-end System p, IBM eHCA on the GX bus (8 × 1.65 GHz POWER)
//
// Calibration targets (see DESIGN.md §5): post cost ≈ 1300–1500 TBR ticks
// and ~3× for 128 SGEs (System p, §4); IMB SendRecv peak ≈ 1750 MB/s and
// no hugepage bandwidth delta under lazy deregistration (Opteron, §5.1);
// ATT-limited +~6 % with 2 MB translations (Xeon/PCI-X, §5.1); Opteron
// DTLB 544 × 4 KB vs 8 × 2 MB entries (§2/§5.2).

#include <string>

#include "ibp/common/types.hpp"
#include "ibp/cpu/memory_system.hpp"
#include "ibp/cpu/tlb.hpp"
#include "ibp/hca/config.hpp"

namespace ibp::platform {

struct PlatformConfig {
  std::string name;
  double tbr_hz = 512e6;        // time-base frequency used for tick output
  double ops_per_ns = 4.0;      // scalar compute throughput per rank
  cpu::TlbConfig tlb;
  cpu::MemConfig mem;
  hca::AdapterConfig adapter;
  // Intra-node transport (MVAPICH-style shared memory channel).
  double shm_bw_bytes_per_ns = 2.5;
  TimePs shm_latency = ns(350);
};

/// AMD Opteron + Mellanox InfiniHost on PCI-Express (the paper's primary
/// IMB/NAS machine). PCIe gives the DMA engine ample bus bandwidth, so
/// adapter-side translation misses hide behind the wire — which is why
/// §5.1 sees no bandwidth change from hugepages once registration is out
/// of the picture.
PlatformConfig opteron_pcie_infinihost();

/// Intel Xeon + Mellanox InfiniHost on PCI-X. The 1 GB/s shared bus makes
/// the DMA side the bottleneck, so ATT misses cost real bandwidth; the
/// paper measured up to +6 % from shipping 2 MB translations.
PlatformConfig xeon_pcix_infinihost();

/// IBM low-end System p + eHCA on the GX bus (the paper's §4 latency
/// testbed; TBR ticks are reported against this platform's time base).
PlatformConfig systemp_gx_ehca();

/// Look up by name ("opteron", "xeon", "systemp") — bench CLI helper.
PlatformConfig by_name(const std::string& name);

}  // namespace ibp::platform
