#pragma once

// Streaming statistics accumulators used by benchmarks and profilers.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "ibp/common/check.hpp"

namespace ibp {

/// Streaming mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const double tot = static_cast<double>(n_ + o.n_);
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / tot;
    mean_ = (mean_ * static_cast<double>(n_) +
             o.mean_ * static_cast<double>(o.n_)) / tot;
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples for exact quantiles; fine for benchmark-sized data sets.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  /// q in [0, 1]; nearest-rank quantile.
  double quantile(double q) {
    IBP_CHECK(!samples_.empty());
    IBP_CHECK(q >= 0.0 && q <= 1.0);
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[idx];
  }

  double median() { return quantile(0.5); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace ibp
