#pragma once

// Streaming statistics accumulators used by benchmarks and profilers.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "ibp/common/check.hpp"

namespace ibp {

/// Streaming mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const double tot = static_cast<double>(n_ + o.n_);
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / tot;
    mean_ = (mean_ * static_cast<double>(n_) +
             o.mean_ * static_cast<double>(o.n_)) / tot;
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket log-scale histogram with percentile extraction — the
/// streaming companion to RunningStats for latency distributions (p50/
/// p95/p99) where storing every sample (SampleSet) would not scale to
/// serving-style request counts. Buckets are power-of-two octaves split
/// into 8 linear sub-buckets (HDR-histogram style), so the quantile
/// error is bounded by 12.5 % of the value, values up to 2^64-1 fit, and
/// two histograms merge by adding bucket counts. Exact count/sum/min/max
/// ride along in an embedded RunningStats.
class LogHistogram {
 public:
  static constexpr int kSubBits = 3;             // 8 sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kBuckets = (64 - kSubBits + 1) * kSub;

  void add(std::uint64_t v, std::uint64_t count = 1) {
    buckets_[bucket_of(v)] += count;
    for (std::uint64_t i = 0; i < count; ++i)
      stats_.add(static_cast<double>(v));
  }

  std::uint64_t count() const { return stats_.count(); }
  bool empty() const { return stats_.count() == 0; }

  /// The exact accompanying moments (mean/min/max/stddev over raw values).
  const RunningStats& stats() const { return stats_; }

  /// Nearest-rank quantile, reported as the upper bound of the bucket
  /// holding that rank (conservative for latency SLOs). q in [0, 1];
  /// 0.0 on an empty histogram.
  double quantile(double q) const {
    IBP_CHECK(q >= 0.0 && q <= 1.0);
    const std::uint64_t n = stats_.count();
    if (n == 0) return 0.0;
    // Nearest-rank: the smallest bucket whose cumulative count covers
    // ceil(q * n) samples (rank 1 for q == 0).
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0) rank = 1;
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      cum += buckets_[i];
      if (cum >= rank) return static_cast<double>(bucket_upper(i));
    }
    return static_cast<double>(stats_.max());  // unreachable
  }

  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  void merge(const LogHistogram& o) {
    for (int i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    stats_.merge(o.stats_);
  }

  std::uint64_t bucket_count(int i) const {
    IBP_CHECK(i >= 0 && i < kBuckets);
    return buckets_[static_cast<std::size_t>(i)];
  }

  /// Bucket index for a value: values below 2^kSubBits get exact unit
  /// buckets; above, octave e (v in [2^e, 2^(e+1))) splits into kSub
  /// linear sub-buckets of width 2^(e - kSubBits).
  static int bucket_of(std::uint64_t v) {
    if (v < kSub) return static_cast<int>(v);
    int e = 63;
    while ((v >> e) == 0) --e;  // e = floor(log2 v) >= kSubBits
    const int sub = static_cast<int>((v >> (e - kSubBits)) & (kSub - 1));
    return (e - kSubBits + 1) * kSub + sub;
  }

  /// Largest value mapping to bucket `i` (what quantile() reports).
  static std::uint64_t bucket_upper(int i) {
    IBP_CHECK(i >= 0 && i < kBuckets);
    if (i < kSub) return static_cast<std::uint64_t>(i);
    const int e = i / kSub + kSubBits - 1;
    const int sub = i % kSub;
    const std::uint64_t lower = (std::uint64_t{1} << e) +
                                static_cast<std::uint64_t>(sub)
                                    * (std::uint64_t{1} << (e - kSubBits));
    return lower + (std::uint64_t{1} << (e - kSubBits)) - 1;
  }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  RunningStats stats_;
};

/// Stores samples for exact quantiles; fine for benchmark-sized data sets.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  /// q in [0, 1]; nearest-rank quantile.
  double quantile(double q) {
    IBP_CHECK(!samples_.empty());
    IBP_CHECK(q >= 0.0 && q <= 1.0);
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[idx];
  }

  double median() { return quantile(0.5); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace ibp
