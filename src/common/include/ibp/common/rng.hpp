#pragma once

// Deterministic random number generation.
//
// All randomness in the simulator flows through explicitly seeded Rng
// instances (xoshiro256** core, splitmix64 seeding); nothing reads entropy
// or the wall clock, so every run is bit-reproducible.

#include <cstdint>

#include "ibp/common/check.hpp"

namespace ibp {

/// splitmix64 — used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    IBP_CHECK(bound != 0);
    // Lemire-style rejection-free-ish reduction; bias negligible for
    // simulation use (bound << 2^64), but keep a rejection loop for exactness.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    IBP_CHECK(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Fork a statistically independent child stream (for per-rank RNGs).
  Rng fork() { return Rng(next_u64() ^ 0xa5a5a5a55a5a5a5aull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ibp
