#pragma once

// Error handling used across ibplace.
//
// Simulation-state violations (caller bugs, impossible model states) are
// fatal: they throw ibp::SimError carrying a formatted message with source
// location. Tests assert on these throws; production-style callers treat
// them as programming errors.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ibp {

class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail(const char* file, int line, const char* expr,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw SimError(os.str());
}

struct MsgStream {
  std::ostringstream os;
  template <typename T>
  MsgStream& operator<<(const T& v) {
    os << v;
    return *this;
  }
  std::string str() const { return os.str(); }
};

}  // namespace detail
}  // namespace ibp

/// Fatal check with streamed context:
///   IBP_CHECK(len > 0, "length was " << len);
#define IBP_CHECK(cond, ...)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::ibp::detail::MsgStream ibp_msg_;                                  \
      ibp_msg_ << "" __VA_ARGS__;                                         \
      ::ibp::detail::fail(__FILE__, __LINE__, #cond, ibp_msg_.str());     \
    }                                                                     \
  } while (false)

#define IBP_FAIL(...)                                                     \
  do {                                                                    \
    ::ibp::detail::MsgStream ibp_msg_;                                    \
    ibp_msg_ << "" __VA_ARGS__;                                           \
    ::ibp::detail::fail(__FILE__, __LINE__, "unreachable", ibp_msg_.str()); \
  } while (false)
