#pragma once

// Minimal fixed-width text table printer for bench output, so every bench
// prints the paper's rows/series in a uniform, diff-stable format.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ibp/common/check.hpp"

namespace ibp {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Ts>
  void add_row(const Ts&... cells) {
    std::vector<std::string> row;
    (row.push_back(to_cell(cells)), ...);
    IBP_CHECK(row.size() == headers_.size(), "row width mismatch");
    rows_.push_back(std::move(row));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      width[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    print_row(os, headers_, width);
    std::string sep;
    for (std::size_t c = 0; c < width.size(); ++c) {
      sep += std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) sep += "+";
    }
    os << sep << "\n";
    for (const auto& row : rows_) print_row(os, row, width);
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(2) << v;
      return os.str();
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  static void print_row(std::ostream& os, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::setw(static_cast<int>(width[c])) << row[c] << " ";
      if (c + 1 < row.size()) os << "|";
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ibp
