#pragma once

// Fundamental scalar types shared by every ibplace module.
//
// All simulated time is kept in picoseconds as an unsigned 64-bit count
// (2^64 ps is roughly 213 days of simulated time, far beyond any run here).
// Benchmarks convert to the unit the paper reports (TBR ticks, microseconds,
// MB/s) only at the edge, via the platform configuration.

#include <cstddef>
#include <cstdint>

namespace ibp {

/// Simulated time in picoseconds.
using TimePs = std::uint64_t;

/// A simulated virtual address inside one rank's address space.
using VirtAddr = std::uint64_t;

/// A simulated physical address (used by the DMA/translation model only;
/// real data lives in host backing memory owned by mem::PhysicalMemory).
using PhysAddr = std::uint64_t;

/// Rank index inside a simulation (0-based, dense).
using RankId = int;

/// Node index inside a simulated cluster.
using NodeId = int;

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

/// Base (small) page size of the simulated OS.
inline constexpr std::uint64_t kSmallPageSize = 4 * kKiB;
/// Huge page size of the simulated OS (x86-64 2 MB hugepages).
inline constexpr std::uint64_t kHugePageSize = 2 * kMiB;

/// Time helpers. Integer math throughout; callers pick rounding explicitly
/// where it matters.
constexpr TimePs ps(std::uint64_t v) { return v; }
constexpr TimePs ns(std::uint64_t v) { return v * 1000ull; }
constexpr TimePs us(std::uint64_t v) { return v * 1000000ull; }
constexpr TimePs ms(std::uint64_t v) { return v * 1000000000ull; }

constexpr double ps_to_us(TimePs t) { return static_cast<double>(t) / 1e6; }
constexpr double ps_to_ns(TimePs t) { return static_cast<double>(t) / 1e3; }

/// Round `v` up to a multiple of `align` (align must be a power of two).
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Round `v` down to a multiple of `align` (align must be a power of two).
constexpr std::uint64_t align_down(std::uint64_t v, std::uint64_t align) {
  return v & ~(align - 1);
}

constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Number of pages of size `page` covering [addr, addr+len).
constexpr std::uint64_t pages_spanned(std::uint64_t addr, std::uint64_t len,
                                      std::uint64_t page) {
  if (len == 0) return 0;
  const std::uint64_t first = align_down(addr, page);
  const std::uint64_t last = align_down(addr + len - 1, page);
  return (last - first) / page + 1;
}

/// Integer ceiling division.
constexpr std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace ibp
