#pragma once

// Generic fixed-capacity LRU set, used for the CPU TLB halves and the
// adapter-side address-translation-table (ATT) cache.

#include <cstdint>
#include <list>
#include <unordered_map>

namespace ibp {

template <typename Key, typename Hash = std::hash<Key>>
class LruSet {
 public:
  explicit LruSet(std::uint64_t capacity) : capacity_(capacity) {}

  /// Returns true on hit. On miss, inserts `key`, evicting the least
  /// recently used entry when full.
  bool touch(const Key& key) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return true;
    }
    if (capacity_ == 0) return false;
    if (index_.size() == capacity_) {
      index_.erase(order_.back());
      order_.pop_back();
    }
    order_.push_front(key);
    index_[key] = order_.begin();
    return false;
  }

  bool contains(const Key& key) const { return index_.count(key) != 0; }

  void erase(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    order_.erase(it->second);
    index_.erase(it);
  }

  void clear() {
    order_.clear();
    index_.clear();
  }

  std::uint64_t size() const { return index_.size(); }
  std::uint64_t capacity() const { return capacity_; }

 private:
  std::uint64_t capacity_;
  std::list<Key> order_;
  std::unordered_map<Key, typename std::list<Key>::iterator, Hash> index_;
};

}  // namespace ibp
