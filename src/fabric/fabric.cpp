#include "ibp/fabric/fabric.hpp"

#include <algorithm>
#include <cstring>

#include "ibp/common/check.hpp"
#include "ibp/core/cluster.hpp"
#include "ibp/telemetry/reqtrace.hpp"

namespace ibp::fabric {

namespace {

std::uint64_t mix64(std::uint64_t v) {
  v ^= v >> 33;
  v *= 0xff51afd7ed558ccdull;
  v ^= v >> 33;
  v *= 0xc4ceb9fe1a85ec53ull;
  v ^= v >> 33;
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardMap

const char* shard_strategy_name(ShardStrategy s) {
  switch (s) {
    case ShardStrategy::Hash: return "hash";
    case ShardStrategy::Range: return "range";
    case ShardStrategy::Affinity: return "affinity";
  }
  IBP_FAIL("bad shard strategy");
}

std::optional<ShardStrategy> shard_strategy_from_name(std::string_view name) {
  for (ShardStrategy s : {ShardStrategy::Hash, ShardStrategy::Range,
                          ShardStrategy::Affinity}) {
    if (name == shard_strategy_name(s)) return s;
  }
  return std::nullopt;
}

ShardMap::ShardMap(std::uint32_t servers, ShardStrategy strategy,
                   std::uint64_t seed, std::uint32_t epoch)
    : servers_(servers), strategy_(strategy), seed_(seed), epoch_(epoch) {
  IBP_CHECK(servers_ > 0, "shard map needs at least one server");
}

std::uint32_t ShardMap::home(std::uint32_t tenant) const {
  if (servers_ == 1) return 0;
  switch (strategy_) {
    case ShardStrategy::Hash:
      return static_cast<std::uint32_t>(
          mix64(tenant ^ seed_ ^ (std::uint64_t{epoch_} << 32)) % servers_);
    case ShardStrategy::Range:
      // Contiguous tenant ranges over the low 16 bits of the id space;
      // the epoch rotates range ownership without moving boundaries.
      return static_cast<std::uint32_t>(
          ((std::uint64_t{tenant & 0xFFFF} * servers_) >> 16) + epoch_) %
             servers_;
    case ShardStrategy::Affinity:
      // Tenant groups (high bits) land together, so a tenant's
      // neighbours share its server — cache affinity across requests.
      return static_cast<std::uint32_t>(
          mix64((tenant >> 4) ^ seed_ ^ (std::uint64_t{epoch_} << 32)) %
          servers_);
  }
  IBP_FAIL("bad shard strategy");
}

std::uint64_t ShardMap::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  fold(servers_);
  fold(static_cast<std::uint64_t>(strategy_));
  fold(epoch_);
  for (std::uint32_t t = 0; t < 256; ++t) fold(home(t));
  return h;
}

// ---------------------------------------------------------------------------
// FabricClient

FabricClient::FabricClient(mpi::Comm& comm, std::vector<int> servers,
                           FabricConfig cfg)
    : comm_(&comm),
      servers_(std::move(servers)),
      cfg_(cfg),
      hub_(comm.env().cluster().request_tracer()),
      map_(static_cast<std::uint32_t>(servers_.size()), cfg.shard_strategy,
           cfg.shard_seed, cfg.shard_epoch) {
  IBP_CHECK(!servers_.empty(), "fabric client needs at least one server");
  IBP_CHECK(cfg_.stripe_width > 0, "stripe width must be positive");
  links_.reserve(servers_.size());
  for (int s : servers_)
    links_.push_back(std::make_unique<rpc::RpcClient>(comm, s, cfg_.rpc));
  register_metrics();
}

FabricClient::~FabricClient() {
  for (auto& p : probes_) p.release();
}

std::uint64_t FabricClient::outstanding() const { return sub_.size(); }

rpc::ClientStats FabricClient::link_stats() const {
  rpc::ClientStats sum;
  for (const auto& l : links_) {
    const rpc::ClientStats& s = l->stats();
    sum.submitted += s.submitted;
    sum.rejected += s.rejected;
    sum.batches += s.batches;
    sum.batched_requests += s.batched_requests;
    sum.completed += s.completed;
    sum.shed += s.shed;
    sum.large_responses += s.large_responses;
    sum.credit_stalls += s.credit_stalls;
    sum.qos_stalls += s.qos_stalls;
    sum.retries += s.retries;
    sum.duplicates += s.duplicates;
  }
  return sum;
}

std::uint64_t FabricClient::submit(std::span<const std::uint8_t> payload,
                                   std::uint32_t response_cap, rpc::Class cls,
                                   std::uint32_t tenant) {
  IBP_CHECK(!closed_, "submit on closed fabric client");
  if (links_.size() > 1 || response_cap > cfg_.stripe_threshold) pump();
  if (response_cap > cfg_.stripe_threshold) {
    ++stats_.submitted;
    return submit_striped(response_cap, cls, tenant);
  }
  // Passthrough: the tenant's home shard serves the request verbatim.
  const std::uint32_t link = map_.home(tenant);
  const std::uint64_t sid =
      links_[link]->submit(payload, response_cap, cls, tenant);
  ++stats_.submitted;
  if (sid == 0) {
    ++stats_.rejected;
    return 0;
  }
  const std::uint64_t fid = next_id_++;
  ++stats_.passthrough;
  sub_.emplace(std::make_pair(link, sid), SubKey{fid, 0, false});
  return fid;
}

std::uint32_t FabricClient::plan_segment_bytes(std::uint32_t total,
                                               std::uint32_t width) const {
  std::uint64_t seg = cfg_.segment_bytes;
  if (seg == 0) {
    // Ask the placement engine how it would chunk the reassembly buffer;
    // the adaptive policy's feedback (stripe latency per byte) lands on
    // Role::StripeSegment, closing the congestion -> placement loop.
    placement::BufferRequest req;
    req.size = total;
    req.role = placement::Role::StripeSegment;
    req.pieces = width;
    seg = comm_->env().placement().plan(req).chunk;
  }
  seg = std::clamp<std::uint64_t>(seg, 256, cfg_.rpc.max_payload);
  return static_cast<std::uint32_t>(seg);
}

std::uint32_t FabricClient::pick_link(std::uint32_t start,
                                      std::uint32_t rotation,
                                      std::uint32_t width) {
  const std::uint32_t n = nlinks();
  const std::uint32_t rr = (start + rotation) % n;
  if (!cfg_.adaptive_links || width <= 1) return rr;
  // Least-outstanding link of the fan-out set [start, start+width);
  // rotation breaks ties deterministically so an idle fleet still
  // round-robins.
  std::uint32_t best = rr;
  std::uint64_t best_load = links_[rr]->outstanding();
  for (std::uint32_t i = 0; i < width; ++i) {
    const std::uint32_t cand = (start + i) % n;
    if (links_[cand]->outstanding() < best_load) {
      best = cand;
      best_load = links_[cand]->outstanding();
    }
  }
  if (best != rr) ++stats_.adaptive_skips;
  return best;
}

std::uint64_t FabricClient::submit_striped(std::uint32_t response_cap,
                                           rpc::Class cls,
                                           std::uint32_t tenant) {
  core::RankEnv& env = comm_->env();
  while (stripes_.size() >= cfg_.reassembly_window) {
    // Reassembly window full: block until something completes.
    pump();
    if (stripes_.size() < cfg_.reassembly_window) break;
    block_step();
  }
  const std::uint32_t width =
      std::min<std::uint32_t>(cfg_.stripe_width, nlinks());
  const std::uint32_t seg_bytes = plan_segment_bytes(response_cap, width);
  const std::uint64_t nseg64 =
      (response_cap + seg_bytes - 1) / std::uint64_t{seg_bytes};
  IBP_CHECK(nseg64 <= 0xFFFF, "stripe would exceed 65535 segments");
  const std::uint16_t nseg = static_cast<std::uint16_t>(nseg64);

  const std::uint64_t fid = next_id_++;
  Stripe st;
  st.total = response_cap;
  st.seg_bytes = seg_bytes;
  st.seg_count = nseg;
  st.remaining = nseg;
  st.tenant = tenant;
  st.buf = env.alloc(response_cap, placement::Role::StripeSegment);
  st.t0 = env.now();
  if (hub_ != nullptr && hub_->active())
    // The fabric-level record; each stripe segment's rpc record becomes
    // a child of it below.
    st.trace = hub_->begin(comm_->rank(), tenant,
                           static_cast<std::uint8_t>(cls), st.t0);
  stripes_.emplace(fid, st);
  ++stats_.stripes;

  const std::uint32_t start = map_.home(tenant);
  std::uint8_t hdr[sizeof(StripeHeader)];
  for (std::uint16_t i = 0; i < nseg; ++i) {
    StripeHeader sh;
    sh.fabric_id = fid;
    sh.total_len = response_cap;
    sh.seg_off = static_cast<std::uint32_t>(i) * seg_bytes;
    sh.seg_len = std::min<std::uint32_t>(seg_bytes, response_cap - sh.seg_off);
    sh.seg_index = i;
    sh.seg_count = nseg;
    std::memcpy(hdr, &sh, sizeof(sh));
    const std::uint32_t link = pick_link(start, i, width);
    std::uint64_t sid;
    while ((sid = links_[link]->submit({hdr, sizeof(hdr)}, sh.seg_len, cls,
                                       tenant, rpc::kFlagStripe)) == 0) {
      // Link queue full: make progress until it accepts (striped submits
      // never reject — the stripe is already partially on the wire).
      links_[link]->flush();
      links_[link]->poll();
      if (links_[link]->outstanding() > 0) links_[link]->wait_some();
      pump();
    }
    sub_.emplace(std::make_pair(link, sid), SubKey{fid, i, true});
    ++stats_.segments;
    if (st.trace != 0)
      hub_->adopt(hub_->wire_trace(comm_->rank(), servers_[link], sid),
                  st.trace, i);
  }
  if (st.trace != 0)
    // All segments on the wire: the fan-out stage ends; the stripe now
    // waits for its last segment.
    hub_->stage_mark(st.trace, telemetry::Stage::Fanout, comm_->rank(),
                     env.now());
  return fid;
}

void FabricClient::pump() {
  for (auto& l : links_) l->poll();
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    for (rpc::Completion& c : links_[i]->take_completions())
      route(i, std::move(c));
  }
}

void FabricClient::route(std::uint32_t link, rpc::Completion&& c) {
  const auto it = sub_.find({link, c.id});
  IBP_CHECK(it != sub_.end(), "completion for unknown sub-request");
  const SubKey key = it->second;
  sub_.erase(it);
  if (!key.striped) {
    c.id = key.fabric_id;
    emit(std::move(c));
    return;
  }
  const auto sit = stripes_.find(key.fabric_id);
  IBP_CHECK(sit != stripes_.end(), "segment for unknown stripe");
  Stripe& st = sit->second;
  if (c.status != rpc::Status::Ok) {
    st.status = c.status;  // one shed segment sheds the stripe
  } else {
    const std::uint32_t off = key.seg_index * st.seg_bytes;
    const std::uint32_t len =
        std::min<std::uint32_t>(st.seg_bytes, st.total - off);
    IBP_CHECK(c.payload.size() == len, "segment length mismatch");
    core::RankEnv& env = comm_->env();
    std::memcpy(env.host_ptr<std::uint8_t>(st.buf + off, len),
                c.payload.data(), len);
  }
  IBP_CHECK(st.remaining > 0, "stripe over-completed");
  if (--st.remaining == 0) finalize(key.fabric_id, st);
}

void FabricClient::finalize(std::uint64_t fid, Stripe& st) {
  core::RankEnv& env = comm_->env();
  if (st.trace != 0)
    // The last segment just arrived; everything from here to completion
    // is reassembly work.
    hub_->stage_mark(st.trace, telemetry::Stage::StripeWait, comm_->rank(),
                     env.now());
  rpc::Completion fc;
  fc.id = fid;
  fc.status = st.status;
  if (st.status == rpc::Status::Ok) {
    // The application reads the assembled response once.
    const auto* p = env.host_ptr<std::uint8_t>(st.buf, st.total);
    fc.payload.assign(p, p + st.total);
    env.touch_stream(st.buf, st.total);
    stats_.reassembled_bytes += st.total;
  }
  fc.latency = env.now() - st.t0;
  if (st.trace != 0) {
    hub_->stage_mark(st.trace, telemetry::Stage::Reassembly, comm_->rank(),
                     env.now());
    hub_->end(st.trace, static_cast<std::uint8_t>(fc.status), env.now());
  }
  // Close the loop: the adaptive placement policy sees what this stripe
  // cost on the reassembly buffer's backing tier.
  placement::Feedback fb;
  fb.size = st.total;
  fb.backing = env.lib().plan_for(st.total, placement::Role::StripeSegment)
                   .backing;
  fb.cost = fc.latency;
  fb.role = placement::Role::StripeSegment;
  fb.pieces = st.seg_count;
  fb.gathered = true;
  env.placement().feed(fb);
  env.dealloc(st.buf);
  stripes_.erase(fid);
  emit(std::move(fc));
}

void FabricClient::emit(rpc::Completion&& c) {
  if (c.status == rpc::Status::Ok) {
    lat_.add(static_cast<std::uint64_t>(c.latency / 1000));  // ps -> ns
  } else {
    ++stats_.shed;
  }
  ++stats_.completed;
  auto [pos, fresh] = done_.emplace(c.id, std::move(c));
  IBP_CHECK(fresh, "duplicate fabric completion");
  fresh_.push_back(&pos->second);
}

void FabricClient::block_any() {
  std::vector<mpi::Req> reqs;
  for (auto& l : links_) {
    l->flush();
    if (l->response_req() != nullptr) reqs.push_back(l->response_req());
  }
  IBP_CHECK(!reqs.empty(), "blocking with no link awaiting a response");
  comm_->waitany(reqs);
  pump();
}

void FabricClient::block_step() {
  if (links_.size() == 1) {
    // Single link: let the link block exactly as a bare RpcClient would.
    // Even an empty CQ poll costs virtual time, so the passthrough path
    // must not add progress calls of its own.
    for (rpc::Completion& c : links_[0]->take_completions())
      route(0, std::move(c));
    if (!fresh_.empty()) return;
    links_[0]->wait_some();
    for (rpc::Completion& c : links_[0]->take_completions())
      route(0, std::move(c));
    return;
  }
  block_any();
}

void FabricClient::poll() {
  if (closed_) return;
  pump();
}

const rpc::Completion& FabricClient::wait(std::uint64_t id) {
  while (!completed(id)) {
    if (links_.size() > 1) {
      pump();
      if (completed(id)) break;
    }
    block_step();
  }
  return done_.at(id);
}

void FabricClient::wait_some() {
  IBP_CHECK(outstanding() > 0, "wait_some with nothing outstanding");
  while (fresh_.empty()) {
    if (links_.size() > 1) {
      pump();
      if (!fresh_.empty()) return;
    }
    block_step();
  }
}

std::vector<rpc::Completion> FabricClient::take_completions() {
  std::vector<rpc::Completion> out;
  out.reserve(fresh_.size());
  for (const rpc::Completion* c : fresh_) out.push_back(*c);
  fresh_.clear();
  return out;
}

void FabricClient::drain() {
  if (links_.size() == 1) {
    // One link drain, mirroring a bare RpcClient drain call for call.
    do {
      links_[0]->drain();
      for (rpc::Completion& c : links_[0]->take_completions())
        route(0, std::move(c));
    } while (!sub_.empty());
    return;
  }
  while (!sub_.empty()) {
    pump();
    if (sub_.empty()) break;
    block_any();
  }
  for (auto& l : links_) l->drain();
}

void FabricClient::close() {
  if (closed_) return;
  drain();
  for (auto& l : links_) l->close();
  closed_ = true;
}

void FabricClient::register_metrics() {
  auto& m = comm_->env().cluster().metrics();
  probes_.push_back(
      m.probe("fabric.requests", [this] { return double(stats_.submitted); }));
  probes_.push_back(
      m.probe("fabric.stripes", [this] { return double(stats_.stripes); }));
  probes_.push_back(
      m.probe("fabric.segments", [this] { return double(stats_.segments); }));
  probes_.push_back(m.probe("fabric.reassembled_bytes", [this] {
    return double(stats_.reassembled_bytes);
  }));
  probes_.push_back(m.probe("fabric.adaptive_skips", [this] {
    return double(stats_.adaptive_skips);
  }));
  probes_.push_back(m.probe("fabric.link_credit_stalls", [this] {
    return double(link_stats().credit_stalls);
  }));
  // Fabric-level latency quantiles, rank-qualified like the rpc client's
  // (percentiles must not sum across ranks).
  const std::string pre = "fabric.r" + std::to_string(comm_->rank()) + ".";
  for (auto& p : telemetry::histogram_probes(m, pre + "latency", &lat_))
    probes_.push_back(std::move(p));
}

// ---------------------------------------------------------------------------
// FabricServer

FabricServer::FabricServer(mpi::Comm& comm, std::vector<int> clients,
                           FabricConfig cfg, rpc::Handler app)
    : comm_(&comm), cfg_(cfg), app_(std::move(app)) {
  if (!app_) app_ = rpc::default_handler();
  rpc::Handler wrapped = [this](const rpc::RequestView& rq, std::uint8_t* out,
                                std::uint32_t cap) {
    if ((rq.flags & rpc::kFlagStripe) != 0) return serve_stripe(rq, out, cap);
    return app_(rq, out, cap);
  };
  server_ = std::make_unique<rpc::RpcServer>(comm, std::move(clients),
                                             cfg_.rpc, std::move(wrapped));
  register_metrics();
}

FabricServer::~FabricServer() {
  for (auto& p : probes_) p.release();
  if (shard_ != 0) comm_->env().dealloc(shard_);
}

void FabricServer::ensure_shard() {
  if (shard_ != 0) return;
  IBP_CHECK(cfg_.shard_bytes >= cfg_.rpc.max_payload,
            "shard arena smaller than one segment");
  shard_ = comm_->env().alloc(cfg_.shard_bytes, placement::Role::RpcShard);
}

std::uint32_t FabricServer::serve_stripe(const rpc::RequestView& rq,
                                         std::uint8_t* out,
                                         std::uint32_t cap) {
  IBP_CHECK(rq.payload_len >= sizeof(StripeHeader),
            "striped request without stripe header");
  StripeHeader sh;
  std::memcpy(&sh, rq.payload, sizeof(sh));
  IBP_CHECK(sh.seg_len <= cap, "segment exceeds response capacity");
  ensure_shard();
  core::RankEnv& env = comm_->env();
  // Read the segment's source bytes from the resident shard arena — the
  // placement-sensitive cost striping spreads across server ranks.
  const std::uint64_t span =
      std::min<std::uint64_t>(sh.seg_len, cfg_.shard_bytes);
  const std::uint64_t off =
      cfg_.shard_bytes > span ? sh.seg_off % (cfg_.shard_bytes - span) : 0;
  env.touch_stream(shard_ + off, span);
  // The application's per-byte serving work (storage read, checksum) —
  // the cost striping parallelises across shard ranks.
  env.sim().advance(static_cast<TimePs>(sh.seg_len) * cfg_.serve_per_byte_ps);
  for (std::uint32_t i = 0; i < sh.seg_len; ++i)
    out[i] = stripe_byte(sh.fabric_id, rq.tenant, sh.seg_off + i);
  ++striped_segments_;
  shard_bytes_read_ += span;
  return sh.seg_len;
}

void FabricServer::register_metrics() {
  auto& m = comm_->env().cluster().metrics();
  probes_.push_back(m.probe("fabric.striped_segments", [this] {
    return double(striped_segments_);
  }));
  probes_.push_back(m.probe("fabric.shard_bytes_read", [this] {
    return double(shard_bytes_read_);
  }));
  // Per-rank congestion signal: the shard's accepted-but-unserved queue
  // depth, sampled by the telemetry plane (summing across ranks would
  // hide the hot shard, hence the rank-qualified name).
  const std::string pre = "fabric.r" + std::to_string(comm_->rank()) + ".";
  probes_.push_back(m.probe(pre + "queue_depth", [this] {
    return double(server_->queue_depth());
  }));
}

}  // namespace ibp::fabric
