#include "ibp/fabric/fabric.hpp"

#include <algorithm>
#include <cstring>

#include "ibp/common/check.hpp"
#include "ibp/core/cluster.hpp"
#include "ibp/telemetry/reqtrace.hpp"

namespace ibp::fabric {

namespace {

std::uint64_t mix64(std::uint64_t v) {
  v ^= v >> 33;
  v *= 0xff51afd7ed558ccdull;
  v ^= v >> 33;
  v *= 0xc4ceb9fe1a85ec53ull;
  v ^= v >> 33;
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardMap

const char* shard_strategy_name(ShardStrategy s) {
  switch (s) {
    case ShardStrategy::Hash: return "hash";
    case ShardStrategy::Range: return "range";
    case ShardStrategy::Affinity: return "affinity";
  }
  IBP_FAIL("bad shard strategy");
}

std::optional<ShardStrategy> shard_strategy_from_name(std::string_view name) {
  for (ShardStrategy s : {ShardStrategy::Hash, ShardStrategy::Range,
                          ShardStrategy::Affinity}) {
    if (name == shard_strategy_name(s)) return s;
  }
  return std::nullopt;
}

ShardMap::ShardMap(std::uint32_t servers, ShardStrategy strategy,
                   std::uint64_t seed, std::uint32_t epoch)
    : servers_(servers), strategy_(strategy), seed_(seed), epoch_(epoch) {
  IBP_CHECK(servers_ > 0, "shard map needs at least one server");
}

std::uint32_t ShardMap::base_home(std::uint32_t tenant) const {
  if (servers_ == 1) return 0;
  switch (strategy_) {
    case ShardStrategy::Hash:
      return static_cast<std::uint32_t>(mix64(tenant ^ seed_) % servers_);
    case ShardStrategy::Range:
      // Contiguous tenant ranges over the low 16 bits of the id space.
      return static_cast<std::uint32_t>(
          (std::uint64_t{tenant & 0xFFFF} * servers_) >> 16);
    case ShardStrategy::Affinity:
      // Tenant groups (high bits) land together, so a tenant's
      // neighbours share its server — cache affinity across requests.
      return static_cast<std::uint32_t>(mix64((tenant >> 4) ^ seed_) %
                                        servers_);
  }
  IBP_FAIL("bad shard strategy");
}

std::uint32_t ShardMap::home(std::uint32_t tenant) const {
  const std::uint32_t base = base_home(tenant);
  if (excluded_.empty() || !excluded_[base]) return base;
  // Displaced tenants rehash over the survivors. The probe key keeps
  // whole affinity groups (and range slots) together, and depends only
  // on the exclusion mask — not on the order exclusions happened — so
  // every endpoint computes the same map, and a readmit restores the
  // base homes exactly.
  const std::uint64_t key = strategy_ == ShardStrategy::Affinity
                                ? (tenant >> 4)
                                : strategy_ == ShardStrategy::Range
                                      ? (tenant & 0xFFFF)
                                      : tenant;
  for (std::uint32_t attempt = 1; attempt <= 8 * servers_; ++attempt) {
    const auto cand = static_cast<std::uint32_t>(
        mix64(key ^ seed_ ^ (std::uint64_t{attempt} << 40)) % servers_);
    if (!excluded_[cand]) return cand;
  }
  // Astronomically unlikely with any server alive; scan as a backstop.
  for (std::uint32_t i = 1; i <= servers_; ++i) {
    const std::uint32_t cand = (base + i) % servers_;
    if (!excluded_[cand]) return cand;
  }
  IBP_FAIL("shard map has no alive server");
}

void ShardMap::exclude(std::uint32_t server) {
  IBP_CHECK(server < servers_, "exclude: no such server");
  IBP_CHECK(!excluded(server), "exclude: server already excluded");
  IBP_CHECK(alive() > 1, "exclude: cannot lose the last alive server");
  if (excluded_.empty()) excluded_.assign(servers_, false);
  excluded_[server] = true;
  ++epoch_;
}

void ShardMap::readmit(std::uint32_t server) {
  IBP_CHECK(server < servers_, "readmit: no such server");
  IBP_CHECK(excluded(server), "readmit: server is not excluded");
  excluded_[server] = false;
  ++epoch_;
}

std::uint32_t ShardMap::alive() const {
  std::uint32_t n = servers_;
  for (std::size_t s = 0; s < excluded_.size(); ++s)
    if (excluded_[s]) --n;
  return n;
}

std::uint64_t ShardMap::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  fold(servers_);
  fold(static_cast<std::uint64_t>(strategy_));
  fold(epoch_);
  // The exclusion mask folds only once allocated, keeping pre-failover
  // digests (and the committed goldens that embed them) stable.
  for (std::size_t s = 0; s < excluded_.size(); ++s)
    if (excluded_[s]) fold(0x10000 | s);
  for (std::uint32_t t = 0; t < 256; ++t) fold(home(t));
  return h;
}

const char* link_health_name(LinkHealth h) {
  switch (h) {
    case LinkHealth::Healthy: return "healthy";
    case LinkHealth::Suspect: return "suspect";
    case LinkHealth::Dead: return "dead";
    case LinkHealth::Readmitted: return "readmitted";
  }
  IBP_FAIL("bad link health");
}

// ---------------------------------------------------------------------------
// FabricClient

FabricClient::FabricClient(mpi::Comm& comm, std::vector<int> servers,
                           FabricConfig cfg)
    : comm_(&comm),
      servers_(std::move(servers)),
      cfg_(cfg),
      hub_(comm.env().cluster().request_tracer()),
      map_(static_cast<std::uint32_t>(servers_.size()), cfg.shard_strategy,
           cfg.shard_seed, cfg.shard_epoch) {
  IBP_CHECK(!servers_.empty(), "fabric client needs at least one server");
  IBP_CHECK(cfg_.stripe_width > 0, "stripe width must be positive");
  if (failover_armed()) {
    // The health monitor's lease is the link-level request timeout:
    // without one a dead server produces no signal at all.
    IBP_CHECK(cfg_.rpc.request_timeout != 0,
              "fail_after needs rpc.request_timeout");
    cfg_.rpc.fail_timed_out = true;
    const std::size_t n = servers_.size();
    health_.assign(n, LinkHealth::Healthy);
    losses_.assign(n, 0);
    next_probe_.assign(n, 0);
    probe_backoff_.assign(n, 0);
  }
  links_.reserve(servers_.size());
  for (int s : servers_)
    links_.push_back(std::make_unique<rpc::RpcClient>(comm, s, cfg_.rpc));
  register_metrics();
}

FabricClient::~FabricClient() {
  for (auto& p : probes_) p.release();
}

std::uint64_t FabricClient::outstanding() const { return sub_.size(); }

rpc::ClientStats FabricClient::link_stats() const {
  rpc::ClientStats sum;
  for (const auto& l : links_) {
    const rpc::ClientStats& s = l->stats();
    sum.submitted += s.submitted;
    sum.rejected += s.rejected;
    sum.batches += s.batches;
    sum.batched_requests += s.batched_requests;
    sum.completed += s.completed;
    sum.shed += s.shed;
    sum.large_responses += s.large_responses;
    sum.credit_stalls += s.credit_stalls;
    sum.qos_stalls += s.qos_stalls;
    sum.retries += s.retries;
    sum.duplicates += s.duplicates;
  }
  return sum;
}

std::uint64_t FabricClient::submit(std::span<const std::uint8_t> payload,
                                   std::uint32_t response_cap, rpc::Class cls,
                                   std::uint32_t tenant) {
  IBP_CHECK(!closed_, "submit on closed fabric client");
  if (links_.size() > 1 || response_cap > cfg_.stripe_threshold) pump();
  if (failover_armed() && cls == rpc::Class::Bulk &&
      cfg_.degrade_outstanding > 0 && degraded()) {
    // Short-handed: shed Bulk before it crowds Latency off the
    // survivors. The caller sees an ordinary Overloaded completion.
    std::uint64_t backlog = 0;
    for (const auto& l : links_) backlog += l->outstanding();
    if (backlog >= cfg_.degrade_outstanding) {
      ++stats_.submitted;
      ++stats_.degraded_shed;
      rpc::Completion c;
      c.id = next_id_++;
      c.status = rpc::Status::Overloaded;
      const std::uint64_t fid = c.id;
      emit(std::move(c));
      return fid;
    }
  }
  if (response_cap > cfg_.stripe_threshold) {
    ++stats_.submitted;
    return submit_striped(response_cap, cls, tenant);
  }
  // Passthrough: the tenant's home shard serves the request verbatim.
  const std::uint32_t link = map_.home(tenant);
  const std::uint64_t sid =
      links_[link]->submit(payload, response_cap, cls, tenant);
  ++stats_.submitted;
  if (sid == 0) {
    ++stats_.rejected;
    return 0;
  }
  const std::uint64_t fid = next_id_++;
  ++stats_.passthrough;
  sub_.emplace(std::make_pair(link, sid), SubKey{fid, 0, false});
  if (failover_armed()) {
    PendingReq pr;
    pr.payload.assign(payload.begin(), payload.end());
    pr.response_cap = response_cap;
    pr.cls = cls;
    pr.tenant = tenant;
    pr.t0 = comm_->env().now();
    pending_.emplace(fid, std::move(pr));
  }
  return fid;
}

std::uint32_t FabricClient::plan_segment_bytes(std::uint32_t total,
                                               std::uint32_t width) const {
  std::uint64_t seg = cfg_.segment_bytes;
  if (seg == 0) {
    // Ask the placement engine how it would chunk the reassembly buffer;
    // the adaptive policy's feedback (stripe latency per byte) lands on
    // Role::StripeSegment, closing the congestion -> placement loop.
    placement::BufferRequest req;
    req.size = total;
    req.role = placement::Role::StripeSegment;
    req.pieces = width;
    seg = comm_->env().placement().plan(req).chunk;
  }
  seg = std::clamp<std::uint64_t>(seg, 256, cfg_.rpc.max_payload);
  return static_cast<std::uint32_t>(seg);
}

std::uint32_t FabricClient::pick_link(std::uint32_t start,
                                      std::uint32_t rotation,
                                      std::uint32_t width) {
  const std::uint32_t n = nlinks();
  const auto dead = [this](std::uint32_t cand) {
    return failover_armed() && health_[cand] == LinkHealth::Dead;
  };
  std::uint32_t rr = (start + rotation) % n;
  if (dead(rr)) {
    // The rotation slot's server is gone: walk the whole ring for the
    // next alive link (the fan-out set may be entirely dead).
    for (std::uint32_t i = 1; i < n; ++i) {
      const std::uint32_t cand = (rr + i) % n;
      if (!dead(cand)) {
        rr = cand;
        break;
      }
    }
    IBP_CHECK(!dead(rr), "no alive link to pick");
  }
  if (!cfg_.adaptive_links || width <= 1) return rr;
  // Least-outstanding link of the fan-out set [start, start+width);
  // rotation breaks ties deterministically so an idle fleet still
  // round-robins.
  std::uint32_t best = rr;
  std::uint64_t best_load = links_[rr]->outstanding();
  for (std::uint32_t i = 0; i < width; ++i) {
    const std::uint32_t cand = (start + i) % n;
    if (dead(cand)) continue;
    if (links_[cand]->outstanding() < best_load) {
      best = cand;
      best_load = links_[cand]->outstanding();
    }
  }
  if (best != rr) ++stats_.adaptive_skips;
  return best;
}

std::uint64_t FabricClient::submit_striped(std::uint32_t response_cap,
                                           rpc::Class cls,
                                           std::uint32_t tenant) {
  core::RankEnv& env = comm_->env();
  while (stripes_.size() >= cfg_.reassembly_window) {
    // Reassembly window full: block until something completes.
    pump();
    if (stripes_.size() < cfg_.reassembly_window) break;
    block_step();
  }
  const std::uint32_t width =
      std::min<std::uint32_t>(cfg_.stripe_width, nlinks());
  const std::uint32_t seg_bytes = plan_segment_bytes(response_cap, width);
  const std::uint64_t nseg64 =
      (response_cap + seg_bytes - 1) / std::uint64_t{seg_bytes};
  IBP_CHECK(nseg64 <= 0xFFFF, "stripe would exceed 65535 segments");
  const std::uint16_t nseg = static_cast<std::uint16_t>(nseg64);

  const std::uint64_t fid = next_id_++;
  Stripe st;
  st.total = response_cap;
  st.seg_bytes = seg_bytes;
  st.seg_count = nseg;
  st.remaining = nseg;
  st.tenant = tenant;
  st.cls = cls;
  st.buf = env.alloc(response_cap, placement::Role::StripeSegment);
  st.t0 = env.now();
  if (failover_armed()) st.attempts.assign(nseg, 1);
  if (hub_ != nullptr && hub_->active())
    // The fabric-level record; each stripe segment's rpc record becomes
    // a child of it below.
    st.trace = hub_->begin(comm_->rank(), tenant,
                           static_cast<std::uint8_t>(cls), st.t0);
  stripes_.emplace(fid, st);
  ++stats_.stripes;

  const std::uint32_t start = map_.home(tenant);
  std::uint8_t hdr[sizeof(StripeHeader)];
  for (std::uint16_t i = 0; i < nseg; ++i) {
    StripeHeader sh;
    sh.fabric_id = fid;
    sh.total_len = response_cap;
    sh.seg_off = static_cast<std::uint32_t>(i) * seg_bytes;
    sh.seg_len = std::min<std::uint32_t>(seg_bytes, response_cap - sh.seg_off);
    sh.seg_index = i;
    sh.seg_count = nseg;
    std::memcpy(hdr, &sh, sizeof(sh));
    std::uint32_t link = pick_link(start, i, width);
    std::uint64_t sid;
    while ((sid = links_[link]->submit({hdr, sizeof(hdr)}, sh.seg_len, cls,
                                       tenant, rpc::kFlagStripe)) == 0) {
      // Link queue full: make progress until it accepts (striped submits
      // never reject — the stripe is already partially on the wire).
      if (failover_armed()) {
        // The chosen link may be declared dead while we block; re-pick
        // from the (possibly bumped) shard map afterwards.
        failover_block();
        link = pick_link(map_.home(tenant), i, width);
      } else {
        links_[link]->flush();
        links_[link]->poll();
        if (links_[link]->outstanding() > 0) links_[link]->wait_some();
        pump();
      }
    }
    sub_.emplace(std::make_pair(link, sid), SubKey{fid, i, true});
    ++stats_.segments;
    if (st.trace != 0)
      hub_->adopt(hub_->wire_trace(comm_->rank(), servers_[link], sid),
                  st.trace, i);
  }
  if (st.trace != 0)
    // All segments on the wire: the fan-out stage ends; the stripe now
    // waits for its last segment.
    hub_->stage_mark(st.trace, telemetry::Stage::Fanout, comm_->rank(),
                     env.now());
  return fid;
}

void FabricClient::pump() {
  for (auto& l : links_) l->poll();
  // Routing can synchronously produce more completions while the health
  // monitor is armed (declaring a server dead abandons its link, which
  // fails everything inflight there locally), so drain to a fixed point.
  // Disarmed, the second sweep finds nothing and the op sequence is
  // unchanged (take_completions costs no virtual time).
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::uint32_t i = 0; i < links_.size(); ++i) {
      for (rpc::Completion& c : links_[i]->take_completions()) {
        route(i, std::move(c));
        progressed = true;
      }
    }
    if (failover_armed()) pump_failover();
  }
}

void FabricClient::route(std::uint32_t link, rpc::Completion&& c) {
  const auto it = sub_.find({link, c.id});
  IBP_CHECK(it != sub_.end(), "completion for unknown sub-request");
  const SubKey key = it->second;
  sub_.erase(it);
  if (failover_armed()) {
    if (key.probe) {
      on_probe(link, c.status);
      return;
    }
    if (c.status == rpc::Status::TimedOut) {
      on_timeout(link, key);
      return;
    }
    note_link_alive(link);
    if (!recovered_) {
      // First answered request since the death: service is restored.
      recovery_ps_ = comm_->env().now() - death_t_;
      recovered_ = true;
    }
  }
  if (!key.striped) {
    if (failover_armed()) {
      const auto pit = pending_.find(key.fabric_id);
      if (pit != pending_.end()) {
        if (pit->second.attempts > 1)
          // End-to-end latency spans every failover hop, not just the
          // last re-issue.
          c.latency = comm_->env().now() - pit->second.t0;
        pending_.erase(pit);
      }
    }
    c.id = key.fabric_id;
    emit(std::move(c));
    return;
  }
  const auto sit = stripes_.find(key.fabric_id);
  IBP_CHECK(sit != stripes_.end(), "segment for unknown stripe");
  Stripe& st = sit->second;
  if (c.status != rpc::Status::Ok) {
    st.status = c.status;  // one shed segment sheds the stripe
  } else {
    const std::uint32_t off = key.seg_index * st.seg_bytes;
    const std::uint32_t len =
        std::min<std::uint32_t>(st.seg_bytes, st.total - off);
    IBP_CHECK(c.payload.size() == len, "segment length mismatch");
    core::RankEnv& env = comm_->env();
    std::memcpy(env.host_ptr<std::uint8_t>(st.buf + off, len),
                c.payload.data(), len);
  }
  IBP_CHECK(st.remaining > 0, "stripe over-completed");
  if (--st.remaining == 0) finalize(key.fabric_id, st);
}

void FabricClient::finalize(std::uint64_t fid, Stripe& st) {
  core::RankEnv& env = comm_->env();
  if (st.trace != 0)
    // The last segment just arrived; everything from here to completion
    // is reassembly work.
    hub_->stage_mark(st.trace, telemetry::Stage::StripeWait, comm_->rank(),
                     env.now());
  rpc::Completion fc;
  fc.id = fid;
  fc.status = st.status;
  if (st.status == rpc::Status::Ok) {
    // The application reads the assembled response once.
    const auto* p = env.host_ptr<std::uint8_t>(st.buf, st.total);
    fc.payload.assign(p, p + st.total);
    env.touch_stream(st.buf, st.total);
    stats_.reassembled_bytes += st.total;
  }
  fc.latency = env.now() - st.t0;
  if (st.trace != 0) {
    hub_->stage_mark(st.trace, telemetry::Stage::Reassembly, comm_->rank(),
                     env.now());
    hub_->end(st.trace, static_cast<std::uint8_t>(fc.status), env.now());
  }
  // Close the loop: the adaptive placement policy sees what this stripe
  // cost on the reassembly buffer's backing tier.
  placement::Feedback fb;
  fb.size = st.total;
  fb.backing = env.lib().plan_for(st.total, placement::Role::StripeSegment)
                   .backing;
  fb.cost = fc.latency;
  fb.role = placement::Role::StripeSegment;
  fb.pieces = st.seg_count;
  fb.gathered = true;
  env.placement().feed(fb);
  env.dealloc(st.buf);
  stripes_.erase(fid);
  emit(std::move(fc));
}

void FabricClient::emit(rpc::Completion&& c) {
  if (c.status == rpc::Status::Ok) {
    lat_.add(static_cast<std::uint64_t>(c.latency / 1000));  // ps -> ns
  } else if (c.status == rpc::Status::TimedOut) {
    ++stats_.timed_out;
  } else {
    ++stats_.shed;
  }
  ++stats_.completed;
  auto [pos, fresh] = done_.emplace(c.id, std::move(c));
  IBP_CHECK(fresh, "duplicate fabric completion");
  fresh_.push_back(&pos->second);
}

// ---------------------------------------------------------------------------
// Failure recovery (every entry point below is unreachable unless
// cfg_.fail_after > 0; the legacy paths never call them)

bool FabricClient::degraded() const {
  for (LinkHealth h : health_)
    if (h == LinkHealth::Dead) return true;
  return false;
}

void FabricClient::note_link_alive(std::uint32_t link) {
  losses_[link] = 0;
  if (health_[link] == LinkHealth::Suspect ||
      health_[link] == LinkHealth::Readmitted)
    health_[link] = LinkHealth::Healthy;
}

void FabricClient::on_timeout(std::uint32_t link, const SubKey& key) {
  if (health_[link] != LinkHealth::Dead) {
    health_[link] = LinkHealth::Suspect;
    if (++losses_[link] >= cfg_.fail_after) declare_dead(link);
  }
  // The orphaned work re-issues through pump_failover, against the
  // (possibly epoch-bumped) shard map.
  if (key.striped)
    retry_seg_.emplace_back(key.fabric_id, key.seg_index);
  else
    retry_pass_.push_back(key.fabric_id);
}

void FabricClient::declare_dead(std::uint32_t link) {
  if (health_[link] == LinkHealth::Dead) return;
  if (map_.alive() <= 1)
    // Nowhere to fail over to: keep the last server Suspect and let
    // per-request reroute budgets time the work out instead.
    return;
  health_[link] = LinkHealth::Dead;
  map_.exclude(link);
  ++stats_.failovers;
  if (recovered_) {
    death_t_ = comm_->env().now();
    recovered_ = false;
  }
  // Fail everything still inflight on the link locally, right now. The
  // TimedOut completions surface on the enclosing pump sweep and requeue
  // through on_timeout — adopting the orphaned in-flight stripes.
  links_[link]->abandon();
  if (cfg_.readmit && !probes_muted_) {
    probe_backoff_[link] = cfg_.probe_backoff;
    next_probe_[link] = comm_->env().now() + cfg_.probe_backoff;
  }
}

void FabricClient::on_probe(std::uint32_t link, rpc::Status status) {
  if (status != rpc::Status::TimedOut) {
    // The server answered: the brownout is over. Readmission restores
    // the displaced tenants' base homes exactly (ShardMap contract).
    health_[link] = LinkHealth::Readmitted;
    losses_[link] = 0;
    next_probe_[link] = 0;
    map_.readmit(link);
    ++stats_.readmissions;
    return;
  }
  probe_backoff_[link] =
      std::min<TimePs>(probe_backoff_[link] * 2, cfg_.probe_backoff_max);
  if (!probes_muted_)
    next_probe_[link] = comm_->env().now() + probe_backoff_[link];
}

void FabricClient::pump_failover() {
  // Due re-admission probes first: a recovered server should rejoin the
  // map before more reroutes pile onto the survivors.
  if (cfg_.readmit && !probes_muted_) {
    const TimePs now = comm_->env().now();
    for (std::uint32_t i = 0; i < links_.size(); ++i) {
      if (health_[i] != LinkHealth::Dead) continue;
      if (next_probe_[i] == 0 || now < next_probe_[i]) continue;
      next_probe_[i] = 0;
      const std::uint64_t sid =
          links_[i]->submit({}, 0, rpc::Class::Latency, 0);
      if (sid == 0) {  // link queue full; try again next pump
        next_probe_[i] = now + probe_backoff_[i];
        continue;
      }
      sub_.emplace(std::make_pair(i, sid), SubKey{0, 0, false, true});
      ++stats_.probes;
      links_[i]->flush();
    }
  }
  while (!retry_pass_.empty()) {
    if (!reroute_passthrough(retry_pass_.front())) return;
    retry_pass_.pop_front();
  }
  while (!retry_seg_.empty()) {
    const auto [fid, seg] = retry_seg_.front();
    if (!reroute_segment(fid, seg)) return;
    retry_seg_.pop_front();
  }
}

bool FabricClient::reroute_passthrough(std::uint64_t fid) {
  const auto it = pending_.find(fid);
  IBP_CHECK(it != pending_.end(), "reroute for unknown request");
  PendingReq& pr = it->second;
  if (pr.attempts > cfg_.reroute_cap) {
    // Out of failover budget: the request is lost for good.
    rpc::Completion c;
    c.id = fid;
    c.status = rpc::Status::TimedOut;
    c.latency = comm_->env().now() - pr.t0;
    pending_.erase(it);
    emit(std::move(c));
    return true;
  }
  const std::uint32_t link = map_.home(pr.tenant);
  const std::uint64_t sid =
      links_[link]->submit(pr.payload, pr.response_cap, pr.cls, pr.tenant);
  if (sid == 0) return false;
  ++pr.attempts;
  ++stats_.rerouted;
  sub_.emplace(std::make_pair(link, sid), SubKey{fid, 0, false});
  if (hub_ != nullptr && hub_->active()) {
    // The failover hop lands on the re-issued rpc record — the one the
    // surviving server will serve.
    const std::uint64_t tr =
        hub_->wire_trace(comm_->rank(), servers_[link], sid);
    if (tr != 0) hub_->failover(tr);
  }
  return true;
}

bool FabricClient::reroute_segment(std::uint64_t fid, std::uint16_t seg) {
  const auto sit = stripes_.find(fid);
  IBP_CHECK(sit != stripes_.end(), "reroute for unknown stripe");
  Stripe& st = sit->second;
  if (st.attempts[seg] > cfg_.reroute_cap) {
    st.status = rpc::Status::TimedOut;  // one lost segment loses the stripe
    IBP_CHECK(st.remaining > 0, "stripe over-completed");
    if (--st.remaining == 0) finalize(fid, st);
    return true;
  }
  StripeHeader sh;
  sh.fabric_id = fid;
  sh.total_len = st.total;
  sh.seg_off = static_cast<std::uint32_t>(seg) * st.seg_bytes;
  sh.seg_len = std::min<std::uint32_t>(st.seg_bytes, st.total - sh.seg_off);
  sh.seg_index = seg;
  sh.seg_count = st.seg_count;
  std::uint8_t hdr[sizeof(StripeHeader)];
  std::memcpy(hdr, &sh, sizeof(sh));
  const std::uint32_t width =
      std::min<std::uint32_t>(cfg_.stripe_width, nlinks());
  const std::uint32_t link = pick_link(map_.home(st.tenant), seg, width);
  const std::uint64_t sid = links_[link]->submit(
      {hdr, sizeof(hdr)}, sh.seg_len, st.cls, st.tenant, rpc::kFlagStripe);
  if (sid == 0) return false;
  ++st.attempts[seg];
  ++stats_.rerouted;
  sub_.emplace(std::make_pair(link, sid), SubKey{fid, seg, true});
  if (st.trace != 0) {
    hub_->adopt(hub_->wire_trace(comm_->rank(), servers_[link], sid),
                st.trace, seg);
    hub_->failover(st.trace);
  }
  return true;
}

void FabricClient::failover_block() {
  for (auto& l : links_) l->flush();
  comm_->env().sim().wait_until([this]() -> std::optional<TimePs> {
    std::optional<TimePs> best;
    const auto upd = [&best](std::optional<TimePs> t) {
      if (t && (!best || *t < *best)) best = t;
    };
    for (const auto& l : links_) {
      if (l->response_req() != nullptr && l->response_req()->done())
        upd(l->response_req()->done_at);
      upd(l->next_ring_visible());
      upd(l->next_deadline());
    }
    upd(comm_->earliest_event_time());
    if (cfg_.readmit && !probes_muted_)
      for (TimePs p : next_probe_)
        if (p != 0) upd(p);
    return best;
  });
  pump();
}

void FabricClient::block_any() {
  std::vector<mpi::Req> reqs;
  bool ring = false;
  for (auto& l : links_) {
    l->flush();
    if (l->response_req() != nullptr) reqs.push_back(l->response_req());
    ring = ring || l->ring_enabled();
  }
  if (ring) {
    // Ring responses land in client memory without completing any recv,
    // so a waitany on response receives alone would sleep through them.
    // Block on the composite instead: a finished recv, a ring record
    // becoming visible, or any transport event.
    comm_->env().sim().wait_until([this]() -> std::optional<TimePs> {
      std::optional<TimePs> best;
      const auto upd = [&best](std::optional<TimePs> t) {
        if (t && (!best || *t < *best)) best = t;
      };
      for (const auto& l : links_) {
        if (l->response_req() != nullptr && l->response_req()->done())
          upd(l->response_req()->done_at);
        upd(l->next_ring_visible());
      }
      upd(comm_->earliest_event_time());
      return best;
    });
    pump();
    return;
  }
  IBP_CHECK(!reqs.empty(), "blocking with no link awaiting a response");
  comm_->waitany(reqs);
  pump();
}

void FabricClient::block_step() {
  if (failover_armed()) {
    // Never block inside the transport: a dead server produces no
    // completion to wake on, so sleep against deadlines instead.
    failover_block();
    return;
  }
  if (links_.size() == 1) {
    // Single link: let the link block exactly as a bare RpcClient would.
    // Even an empty CQ poll costs virtual time, so the passthrough path
    // must not add progress calls of its own.
    for (rpc::Completion& c : links_[0]->take_completions())
      route(0, std::move(c));
    if (!fresh_.empty()) return;
    links_[0]->wait_some();
    for (rpc::Completion& c : links_[0]->take_completions())
      route(0, std::move(c));
    return;
  }
  block_any();
}

void FabricClient::poll() {
  if (closed_) return;
  pump();
}

const rpc::Completion& FabricClient::wait(std::uint64_t id) {
  while (!completed(id)) {
    if (links_.size() > 1) {
      pump();
      if (completed(id)) break;
    }
    block_step();
  }
  return done_.at(id);
}

void FabricClient::wait_some() {
  // An untaken completion satisfies the caller even with nothing on the
  // wire (a degradation shed completes at submit, wire-free).
  IBP_CHECK(!fresh_.empty() || outstanding() > 0,
            "wait_some with nothing outstanding");
  while (fresh_.empty()) {
    if (links_.size() > 1) {
      pump();
      if (!fresh_.empty()) return;
    }
    block_step();
  }
}

std::vector<rpc::Completion> FabricClient::take_completions() {
  std::vector<rpc::Completion> out;
  out.reserve(fresh_.size());
  for (const rpc::Completion* c : fresh_) out.push_back(*c);
  fresh_.clear();
  return out;
}

void FabricClient::drain() {
  if (failover_armed()) {
    // Probes must stop re-arming or a permanently dead server would
    // keep the drain alive forever.
    probes_muted_ = true;
    while (!sub_.empty() || !retry_pass_.empty() || !retry_seg_.empty()) {
      pump();
      if (sub_.empty() && retry_pass_.empty() && retry_seg_.empty()) break;
      failover_block();
    }
    for (auto& l : links_) l->drain();
    probes_muted_ = false;
    return;
  }
  if (links_.size() == 1) {
    // One link drain, mirroring a bare RpcClient drain call for call.
    do {
      links_[0]->drain();
      for (rpc::Completion& c : links_[0]->take_completions())
        route(0, std::move(c));
    } while (!sub_.empty());
    return;
  }
  while (!sub_.empty()) {
    pump();
    if (sub_.empty()) break;
    block_any();
  }
  for (auto& l : links_) l->drain();
}

void FabricClient::close() {
  if (closed_) return;
  drain();
  for (auto& l : links_) l->close();
  closed_ = true;
}

void FabricClient::register_metrics() {
  auto& m = comm_->env().cluster().metrics();
  probes_.push_back(
      m.probe("fabric.requests", [this] { return double(stats_.submitted); }));
  probes_.push_back(
      m.probe("fabric.stripes", [this] { return double(stats_.stripes); }));
  probes_.push_back(
      m.probe("fabric.segments", [this] { return double(stats_.segments); }));
  probes_.push_back(m.probe("fabric.reassembled_bytes", [this] {
    return double(stats_.reassembled_bytes);
  }));
  probes_.push_back(m.probe("fabric.adaptive_skips", [this] {
    return double(stats_.adaptive_skips);
  }));
  probes_.push_back(m.probe("fabric.link_credit_stalls", [this] {
    return double(link_stats().credit_stalls);
  }));
  // Failure-recovery plane. All flat zero (and the epoch at its seed
  // value) unless the health monitor is armed and a server dies.
  probes_.push_back(
      m.probe("fabric.epoch", [this] { return double(map_.epoch()); }));
  probes_.push_back(
      m.probe("fabric.failovers", [this] { return double(stats_.failovers); }));
  probes_.push_back(
      m.probe("fabric.rerouted", [this] { return double(stats_.rerouted); }));
  probes_.push_back(m.probe("fabric.degraded_shed", [this] {
    return double(stats_.degraded_shed);
  }));
  probes_.push_back(m.probe("fabric.readmissions", [this] {
    return double(stats_.readmissions);
  }));
  probes_.push_back(m.probe("fabric.recovery_time_ps", [this] {
    return double(recovery_ps_);
  }));
  // Fabric-level latency quantiles, rank-qualified like the rpc client's
  // (percentiles must not sum across ranks).
  const std::string pre = "fabric.r" + std::to_string(comm_->rank()) + ".";
  for (auto& p : telemetry::histogram_probes(m, pre + "latency", &lat_))
    probes_.push_back(std::move(p));
}

// ---------------------------------------------------------------------------
// FabricServer

FabricServer::FabricServer(mpi::Comm& comm, std::vector<int> clients,
                           FabricConfig cfg, rpc::Handler app)
    : comm_(&comm), cfg_(cfg), app_(std::move(app)) {
  if (!app_) app_ = rpc::default_handler();
  rpc::Handler wrapped = [this](const rpc::RequestView& rq, std::uint8_t* out,
                                std::uint32_t cap) {
    if ((rq.flags & rpc::kFlagStripe) != 0) return serve_stripe(rq, out, cap);
    return app_(rq, out, cap);
  };
  server_ = std::make_unique<rpc::RpcServer>(comm, std::move(clients),
                                             cfg_.rpc, std::move(wrapped));
  register_metrics();
}

FabricServer::~FabricServer() {
  for (auto& p : probes_) p.release();
  if (shard_ != 0) comm_->env().dealloc(shard_);
}

void FabricServer::ensure_shard() {
  if (shard_ != 0) return;
  IBP_CHECK(cfg_.shard_bytes >= cfg_.rpc.max_payload,
            "shard arena smaller than one segment");
  shard_ = comm_->env().alloc(cfg_.shard_bytes, placement::Role::RpcShard);
}

std::uint32_t FabricServer::serve_stripe(const rpc::RequestView& rq,
                                         std::uint8_t* out,
                                         std::uint32_t cap) {
  IBP_CHECK(rq.payload_len >= sizeof(StripeHeader),
            "striped request without stripe header");
  StripeHeader sh;
  std::memcpy(&sh, rq.payload, sizeof(sh));
  IBP_CHECK(sh.seg_len <= cap, "segment exceeds response capacity");
  ensure_shard();
  core::RankEnv& env = comm_->env();
  // Read the segment's source bytes from the resident shard arena — the
  // placement-sensitive cost striping spreads across server ranks.
  const std::uint64_t span =
      std::min<std::uint64_t>(sh.seg_len, cfg_.shard_bytes);
  const std::uint64_t off =
      cfg_.shard_bytes > span ? sh.seg_off % (cfg_.shard_bytes - span) : 0;
  env.touch_stream(shard_ + off, span);
  // The application's per-byte serving work (storage read, checksum) —
  // the cost striping parallelises across shard ranks.
  env.sim().advance(static_cast<TimePs>(sh.seg_len) * cfg_.serve_per_byte_ps);
  for (std::uint32_t i = 0; i < sh.seg_len; ++i)
    out[i] = stripe_byte(sh.fabric_id, rq.tenant, sh.seg_off + i);
  ++striped_segments_;
  shard_bytes_read_ += span;
  return sh.seg_len;
}

void FabricServer::register_metrics() {
  auto& m = comm_->env().cluster().metrics();
  probes_.push_back(m.probe("fabric.striped_segments", [this] {
    return double(striped_segments_);
  }));
  probes_.push_back(m.probe("fabric.shard_bytes_read", [this] {
    return double(shard_bytes_read_);
  }));
  // Per-rank congestion signal: the shard's accepted-but-unserved queue
  // depth, sampled by the telemetry plane (summing across ranks would
  // hide the hot shard, hence the rank-qualified name).
  const std::string pre = "fabric.r" + std::to_string(comm_->rank()) + ".";
  probes_.push_back(m.probe(pre + "queue_depth", [this] {
    return double(server_->queue_depth());
  }));
}

}  // namespace ibp::fabric
