#pragma once

// ibp_fabric — a sharded multi-server serving fabric over ibp_rpc.
//
// One server rank is a toy against a fleet-scale workload; this layer
// turns the single-server RPC path into a sharded fleet while keeping
// every byte's journey decided by the placement engine:
//
//   * ShardMap — deterministic tenant -> server routing with pluggable
//     strategies (hash / range / affinity) and an explicit epoch, so a
//     future reshard is a config change, not a code change,
//   * FabricClient — one RpcClient per server rank ("link"). Requests
//     route to the tenant's home shard; bulk responses above the stripe
//     threshold are split into stripe-segment chunks fanned out over
//     several links (the multi-rail idea: many QPs move one payload) and
//     reassembled into a placement-planned Role::StripeSegment buffer
//     inside a bounded client-side reassembly window,
//   * FabricServer — an RpcServer whose handler serves stripe segments
//     out of a lazily-allocated Role::RpcShard arena, exporting queue
//     depth and stripe counters as fabric.* telemetry probes; stripe
//     latency observations feed the placement engine (Role::StripeSegment)
//     so the `adaptive` policy can steer segment buffers off hot tiers.
//
// Segment sizing comes from the placement engine's plan for the
// reassembly buffer (BufferPlan::chunk), clamped to the RPC slot payload
// so segments always ride the batched eager path; link choice is
// congestion-aware (least outstanding among the stripe's fan-out set,
// deterministic tie-break by rotation from the shard home).
//
// A 1-server fabric with no striped traffic is a transparent passthrough:
// identical wire bytes, identical virtual time, identical completion ids
// to driving the underlying RpcClient directly (the golden-equivalence
// contract bench/ext_fabric_scale asserts).

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "ibp/common/stats.hpp"
#include "ibp/common/types.hpp"
#include "ibp/rpc/rpc.hpp"

namespace ibp::fabric {

// ---------------------------------------------------------------------------
// ShardMap

enum class ShardStrategy : std::uint8_t {
  Hash,      // mixed hash of the tenant id, uniform spread
  Range,     // contiguous tenant ranges per server
  Affinity,  // tenant groups (tenant >> 4) co-located on one server
};

const char* shard_strategy_name(ShardStrategy s);
std::optional<ShardStrategy> shard_strategy_from_name(std::string_view name);

/// Deterministic tenant -> server routing. Pure function of
/// (servers, strategy, seed, epoch): every client computes the same map
/// with no coordination, and a reshard is an explicit epoch bump.
class ShardMap {
 public:
  ShardMap(std::uint32_t servers, ShardStrategy strategy = ShardStrategy::Hash,
           std::uint64_t seed = 42, std::uint32_t epoch = 0);

  /// The server index (0..servers-1) owning `tenant`.
  std::uint32_t home(std::uint32_t tenant) const;

  std::uint32_t servers() const { return servers_; }
  ShardStrategy strategy() const { return strategy_; }
  std::uint64_t seed() const { return seed_; }
  std::uint32_t epoch() const { return epoch_; }

  /// Deterministic fingerprint of the routing function (FNV-1a over the
  /// homes of a fixed tenant sample) — what tests and benches compare to
  /// assert two endpoints agree on the map.
  std::uint64_t digest() const;

 private:
  std::uint32_t servers_;
  ShardStrategy strategy_;
  std::uint64_t seed_;
  std::uint32_t epoch_;
};

// ---------------------------------------------------------------------------
// Stripe framing

/// Sub-header at the start of a striped sub-request's payload (the wire
/// header's kFlagStripe announces it). The server returns the segment's
/// bytes; the client reassembles segments by (fabric_id, seg_index).
struct StripeHeader {
  std::uint64_t fabric_id = 0;
  std::uint32_t total_len = 0;  // full striped response size
  std::uint32_t seg_off = 0;    // this segment's offset in the response
  std::uint32_t seg_len = 0;
  std::uint16_t seg_index = 0;
  std::uint16_t seg_count = 0;
};
static_assert(sizeof(StripeHeader) == 24, "stripe header is 24 bytes");

/// The deterministic byte a striped response carries at `off` — produced
/// by FabricServer, verifiable by any client that knows the request.
inline std::uint8_t stripe_byte(std::uint64_t fabric_id, std::uint32_t tenant,
                                std::uint64_t off) {
  return static_cast<std::uint8_t>(fabric_id * 131 + tenant * 29 + off * 7 +
                                   1);
}

// ---------------------------------------------------------------------------
// Config

struct FabricConfig {
  /// Per-link RPC configuration (every link and the servers share it).
  rpc::RpcConfig rpc;
  /// Responses larger than this are striped across links. Must exceed
  /// nothing in particular — but segments are capped at rpc.max_payload,
  /// so a threshold below it just stripes more of the traffic.
  std::uint64_t stripe_threshold = 8 * kKiB;
  /// Max links one response fans out over (clamped to the server count).
  std::uint32_t stripe_width = 4;
  /// Segment payload size; 0 = ask the placement engine (its
  /// Role::StripeSegment plan's chunk), clamped to rpc.max_payload.
  std::uint32_t segment_bytes = 0;
  /// Congestion-aware link choice: pick the least-loaded link of the
  /// fan-out set instead of pure rotation.
  bool adaptive_links = true;
  /// Max stripes being reassembled concurrently; submit blocks on more.
  std::uint32_t reassembly_window = 8;
  /// Server-side shard arena (Role::RpcShard), allocated lazily on the
  /// first striped request so stripe-free runs stay allocation-free.
  std::uint64_t shard_bytes = 4 * kMiB;
  /// Application cost per served stripe byte on the shard rank (storage
  /// read, checksum, ...), ps/B. This is the work striping spreads over
  /// the fleet; 4000 ps/B models a 250 MB/s per-shard backing store.
  /// Passthrough (un-striped) requests never pay it.
  std::uint64_t serve_per_byte_ps = 4000;
  ShardStrategy shard_strategy = ShardStrategy::Hash;
  std::uint64_t shard_seed = 42;
  std::uint32_t shard_epoch = 0;
};

struct FabricClientStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;     // passthrough submits the link refused
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;         // completions with Status::Overloaded
  std::uint64_t passthrough = 0;  // un-striped requests
  std::uint64_t stripes = 0;      // striped requests
  std::uint64_t segments = 0;     // stripe sub-requests issued
  std::uint64_t reassembled_bytes = 0;
  std::uint64_t adaptive_skips = 0;  // links skipped as congested
};

// ---------------------------------------------------------------------------
// FabricClient

class FabricClient {
 public:
  /// `servers` are the server ranks, in ShardMap index order.
  FabricClient(mpi::Comm& comm, std::vector<int> servers,
               FabricConfig cfg = {});
  ~FabricClient();

  /// Enqueue one request; returns the fabric id (0 = rejected). Routes
  /// to the tenant's home shard; a response_cap above stripe_threshold
  /// stripes the response across links (such submits never reject — they
  /// block for reassembly-window or link capacity instead).
  std::uint64_t submit(std::span<const std::uint8_t> payload,
                       std::uint32_t response_cap = 0,
                       rpc::Class cls = rpc::Class::Latency,
                       std::uint32_t tenant = 0);

  void poll();
  bool completed(std::uint64_t id) const { return done_.count(id) != 0; }
  const rpc::Completion& wait(std::uint64_t id);
  void wait_some();
  std::vector<rpc::Completion> take_completions();
  void drain();
  void close();

  /// Fabric-level requests not yet surfaced as completions.
  std::uint64_t outstanding() const;

  const FabricClientStats& stats() const { return stats_; }
  /// Link RPC stats summed over every link (credit stalls, retries, ...).
  rpc::ClientStats link_stats() const;
  const FabricConfig& fabric_config() const { return cfg_; }
  /// The per-link RPC config (loadgen drivers read flush_timeout here,
  /// mirroring RpcClient::config()).
  const rpc::RpcConfig& config() const { return cfg_.rpc; }
  mpi::Comm& comm() const { return *comm_; }
  const ShardMap& shard_map() const { return map_; }
  rpc::RpcClient& link(std::uint32_t i) { return *links_[i]; }
  std::uint32_t nlinks() const {
    return static_cast<std::uint32_t>(links_.size());
  }
  /// Latency of Ok fabric completions, nanosecond units.
  const LogHistogram& latency() const { return lat_; }

 private:
  struct SubKey {
    std::uint64_t fabric_id = 0;
    std::uint16_t seg_index = 0;
    bool striped = false;
  };
  struct Stripe {
    std::uint32_t total = 0;
    std::uint32_t seg_bytes = 0;
    std::uint16_t seg_count = 0;
    std::uint16_t remaining = 0;
    std::uint32_t tenant = 0;
    VirtAddr buf = 0;  // Role::StripeSegment reassembly buffer
    TimePs t0 = 0;
    rpc::Status status = rpc::Status::Ok;
    std::uint64_t trace = 0;  // fabric-level request-trace id (0 = off)
  };

  /// Non-blocking: poll every link, route arrived sub-completions.
  void pump();
  void route(std::uint32_t link, rpc::Completion&& c);
  void finalize(std::uint64_t fid, Stripe& st);
  /// Block until any link's posted response completes.
  void block_any();
  /// One blocking step. With a single link this delegates to the link's
  /// own wait_some so the virtual-time op sequence is bit-identical to a
  /// bare RpcClient (the golden-equivalence contract); with several it
  /// force-flushes all links and waits for any response.
  void block_step();
  std::uint64_t submit_striped(std::uint32_t response_cap, rpc::Class cls,
                               std::uint32_t tenant);
  std::uint32_t pick_link(std::uint32_t start, std::uint32_t rotation,
                          std::uint32_t width);
  std::uint32_t plan_segment_bytes(std::uint32_t total,
                                   std::uint32_t width) const;
  void emit(rpc::Completion&& c);
  void register_metrics();

  mpi::Comm* comm_;
  std::vector<int> servers_;
  FabricConfig cfg_;
  /// Per-request tracing hub (null = tracing disabled, bit-inert).
  telemetry::RequestTracer* hub_ = nullptr;
  ShardMap map_;
  std::vector<std::unique_ptr<rpc::RpcClient>> links_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, SubKey> sub_;  // by
                                                                   // (link,
                                                                   // rpc id)
  std::map<std::uint64_t, Stripe> stripes_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, rpc::Completion> done_;
  std::deque<const rpc::Completion*> fresh_;
  FabricClientStats stats_;
  LogHistogram lat_;
  std::vector<telemetry::ProbeHandle> probes_;
  bool closed_ = false;
};

// ---------------------------------------------------------------------------
// FabricServer

/// One shard of the fleet: an RpcServer whose handler answers stripe
/// sub-requests from a resident Role::RpcShard arena and delegates
/// everything else to the application handler (default: echo). Congestion
/// signals (queue depth, stripe counters, shard traffic) export as
/// fabric.* probes.
class FabricServer {
 public:
  FabricServer(mpi::Comm& comm, std::vector<int> clients,
               FabricConfig cfg = {}, rpc::Handler app = {});
  ~FabricServer();

  void serve() { server_->serve(); }

  const rpc::ServerStats& stats() const { return server_->stats(); }
  const FabricConfig& fabric_config() const { return cfg_; }
  std::uint64_t striped_segments() const { return striped_segments_; }
  std::uint64_t shard_bytes_read() const { return shard_bytes_read_; }

 private:
  std::uint32_t serve_stripe(const rpc::RequestView& rq, std::uint8_t* out,
                             std::uint32_t cap);
  void ensure_shard();
  void register_metrics();

  mpi::Comm* comm_;
  FabricConfig cfg_;
  rpc::Handler app_;
  std::unique_ptr<rpc::RpcServer> server_;
  VirtAddr shard_ = 0;  // lazy Role::RpcShard arena
  std::uint64_t striped_segments_ = 0;
  std::uint64_t shard_bytes_read_ = 0;
  std::vector<telemetry::ProbeHandle> probes_;
};

}  // namespace ibp::fabric
