#pragma once

// ibp_fabric — a sharded multi-server serving fabric over ibp_rpc.
//
// One server rank is a toy against a fleet-scale workload; this layer
// turns the single-server RPC path into a sharded fleet while keeping
// every byte's journey decided by the placement engine:
//
//   * ShardMap — deterministic tenant -> server routing with pluggable
//     strategies (hash / range / affinity) and an explicit epoch, so a
//     future reshard is a config change, not a code change,
//   * FabricClient — one RpcClient per server rank ("link"). Requests
//     route to the tenant's home shard; bulk responses above the stripe
//     threshold are split into stripe-segment chunks fanned out over
//     several links (the multi-rail idea: many QPs move one payload) and
//     reassembled into a placement-planned Role::StripeSegment buffer
//     inside a bounded client-side reassembly window,
//   * FabricServer — an RpcServer whose handler serves stripe segments
//     out of a lazily-allocated Role::RpcShard arena, exporting queue
//     depth and stripe counters as fabric.* telemetry probes; stripe
//     latency observations feed the placement engine (Role::StripeSegment)
//     so the `adaptive` policy can steer segment buffers off hot tiers.
//
// Segment sizing comes from the placement engine's plan for the
// reassembly buffer (BufferPlan::chunk), clamped to the RPC slot payload
// so segments always ride the batched eager path; link choice is
// congestion-aware (least outstanding among the stripe's fan-out set,
// deterministic tie-break by rotation from the shard home).
//
// A 1-server fabric with no striped traffic is a transparent passthrough:
// identical wire bytes, identical virtual time, identical completion ids
// to driving the underlying RpcClient directly (the golden-equivalence
// contract bench/ext_fabric_scale asserts).

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "ibp/common/stats.hpp"
#include "ibp/common/types.hpp"
#include "ibp/rpc/rpc.hpp"

namespace ibp::fabric {

// ---------------------------------------------------------------------------
// ShardMap

enum class ShardStrategy : std::uint8_t {
  Hash,      // mixed hash of the tenant id, uniform spread
  Range,     // contiguous tenant ranges per server
  Affinity,  // tenant groups (tenant >> 4) co-located on one server
};

const char* shard_strategy_name(ShardStrategy s);
std::optional<ShardStrategy> shard_strategy_from_name(std::string_view name);

/// Deterministic tenant -> server routing. Pure function of
/// (servers, strategy, seed, excluded set): every client computes the
/// same map with no coordination. The epoch counts handoffs — every
/// exclude()/readmit() bumps it — so two endpoints can cheaply agree
/// they are on the same revision via digest().
///
/// Remapping is minimal by construction: a tenant's home is its
/// base-strategy home whenever that server is alive, so excluding one
/// server moves only the tenants homed there (displaced tenants rehash
/// deterministically over the survivors, whole affinity groups moving
/// together), and readmitting it restores the original homes exactly.
class ShardMap {
 public:
  ShardMap(std::uint32_t servers, ShardStrategy strategy = ShardStrategy::Hash,
           std::uint64_t seed = 42, std::uint32_t epoch = 0);

  /// The server index (0..servers-1) owning `tenant`. Never an excluded
  /// server.
  std::uint32_t home(std::uint32_t tenant) const;

  /// Remove a server from the rotation (failover) / return it (recovery).
  /// Both bump the epoch. At least one server must stay alive.
  void exclude(std::uint32_t server);
  void readmit(std::uint32_t server);
  bool excluded(std::uint32_t server) const {
    return !excluded_.empty() && excluded_[server];
  }
  std::uint32_t alive() const;

  std::uint32_t servers() const { return servers_; }
  ShardStrategy strategy() const { return strategy_; }
  std::uint64_t seed() const { return seed_; }
  std::uint32_t epoch() const { return epoch_; }

  /// Deterministic fingerprint of the routing function (FNV-1a over the
  /// homes of a fixed tenant sample, the epoch and the exclusion mask) —
  /// what tests and benches compare to assert two endpoints agree on the
  /// map.
  std::uint64_t digest() const;

 private:
  std::uint32_t base_home(std::uint32_t tenant) const;

  std::uint32_t servers_;
  ShardStrategy strategy_;
  std::uint64_t seed_;
  std::uint32_t epoch_;
  std::vector<bool> excluded_;  // empty until the first exclude()
};

// ---------------------------------------------------------------------------
// Stripe framing

/// Sub-header at the start of a striped sub-request's payload (the wire
/// header's kFlagStripe announces it). The server returns the segment's
/// bytes; the client reassembles segments by (fabric_id, seg_index).
struct StripeHeader {
  std::uint64_t fabric_id = 0;
  std::uint32_t total_len = 0;  // full striped response size
  std::uint32_t seg_off = 0;    // this segment's offset in the response
  std::uint32_t seg_len = 0;
  std::uint16_t seg_index = 0;
  std::uint16_t seg_count = 0;
};
static_assert(sizeof(StripeHeader) == 24, "stripe header is 24 bytes");

/// The deterministic byte a striped response carries at `off` — produced
/// by FabricServer, verifiable by any client that knows the request.
inline std::uint8_t stripe_byte(std::uint64_t fabric_id, std::uint32_t tenant,
                                std::uint64_t off) {
  return static_cast<std::uint8_t>(fabric_id * 131 + tenant * 29 + off * 7 +
                                   1);
}

// ---------------------------------------------------------------------------
// Config

struct FabricConfig {
  /// Per-link RPC configuration (every link and the servers share it).
  rpc::RpcConfig rpc;
  /// Responses larger than this are striped across links. Must exceed
  /// nothing in particular — but segments are capped at rpc.max_payload,
  /// so a threshold below it just stripes more of the traffic.
  std::uint64_t stripe_threshold = 8 * kKiB;
  /// Max links one response fans out over (clamped to the server count).
  std::uint32_t stripe_width = 4;
  /// Segment payload size; 0 = ask the placement engine (its
  /// Role::StripeSegment plan's chunk), clamped to rpc.max_payload.
  std::uint32_t segment_bytes = 0;
  /// Congestion-aware link choice: pick the least-loaded link of the
  /// fan-out set instead of pure rotation.
  bool adaptive_links = true;
  /// Max stripes being reassembled concurrently; submit blocks on more.
  std::uint32_t reassembly_window = 8;
  /// Server-side shard arena (Role::RpcShard), allocated lazily on the
  /// first striped request so stripe-free runs stay allocation-free.
  std::uint64_t shard_bytes = 4 * kMiB;
  /// Application cost per served stripe byte on the shard rank (storage
  /// read, checksum, ...), ps/B. This is the work striping spreads over
  /// the fleet; 4000 ps/B models a 250 MB/s per-shard backing store.
  /// Passthrough (un-striped) requests never pay it.
  std::uint64_t serve_per_byte_ps = 4000;
  ShardStrategy shard_strategy = ShardStrategy::Hash;
  std::uint64_t shard_seed = 42;
  std::uint32_t shard_epoch = 0;

  // --- Failure recovery (fail_after == 0 disables all of it: the legacy
  // single-epoch behaviour, bit-exact with earlier runs) ---

  /// Consecutive TimedOut losses on one link after which the health
  /// monitor declares its server dead: the link is abandoned, the shard
  /// map excludes the server (epoch bump) and every in-flight
  /// sub-request fails over to the survivors. Requires a nonzero
  /// rpc.request_timeout; the per-link RPC config is armed with
  /// fail_timed_out automatically.
  std::uint32_t fail_after = 0;
  /// Probe a dead server for re-admission (brownout recovery). The first
  /// probe fires probe_backoff after the death; each unanswered probe
  /// doubles the interval, capped at probe_backoff_max.
  bool readmit = true;
  TimePs probe_backoff = us(200);
  TimePs probe_backoff_max = us(3200);
  /// Per-request failover budget: a request (or stripe segment) rerouted
  /// more than this many times completes with Status::TimedOut instead
  /// of bouncing between sick servers forever.
  std::uint32_t reroute_cap = 8;
  /// Graceful degradation while short-handed: with any server dead,
  /// Bulk-class submits shed locally (Status::Overloaded) once the
  /// aggregate link backlog reaches this bound, preserving Latency-class
  /// headroom on the survivors. 0 = never shed.
  std::uint32_t degrade_outstanding = 0;
};

struct FabricClientStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;     // passthrough submits the link refused
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;         // completions with Status::Overloaded
  std::uint64_t passthrough = 0;  // un-striped requests
  std::uint64_t stripes = 0;      // striped requests
  std::uint64_t segments = 0;     // stripe sub-requests issued
  std::uint64_t reassembled_bytes = 0;
  std::uint64_t adaptive_skips = 0;  // links skipped as congested
  // --- failure recovery (all zero unless FabricConfig::fail_after) ---
  std::uint64_t failovers = 0;      // servers declared dead
  std::uint64_t rerouted = 0;       // sub-requests re-issued on survivors
  std::uint64_t timed_out = 0;      // fabric completions lost for good
  std::uint64_t degraded_shed = 0;  // bulk submits shed while degraded
  std::uint64_t probes = 0;         // re-admission probes issued
  std::uint64_t readmissions = 0;   // servers readmitted after recovery
};

/// Health-monitor verdict for one link (see DESIGN.md, "Failure
/// recovery"): Healthy -> Suspect on the first loss, Suspect -> Dead at
/// fail_after consecutive losses, Dead -> Readmitted when a probe
/// answers, Readmitted -> Healthy on the first regular completion.
enum class LinkHealth : std::uint8_t { Healthy, Suspect, Dead, Readmitted };
const char* link_health_name(LinkHealth h);

// ---------------------------------------------------------------------------
// FabricClient

class FabricClient {
 public:
  /// `servers` are the server ranks, in ShardMap index order.
  FabricClient(mpi::Comm& comm, std::vector<int> servers,
               FabricConfig cfg = {});
  ~FabricClient();

  /// Enqueue one request; returns the fabric id (0 = rejected). Routes
  /// to the tenant's home shard; a response_cap above stripe_threshold
  /// stripes the response across links (such submits never reject — they
  /// block for reassembly-window or link capacity instead).
  std::uint64_t submit(std::span<const std::uint8_t> payload,
                       std::uint32_t response_cap = 0,
                       rpc::Class cls = rpc::Class::Latency,
                       std::uint32_t tenant = 0);

  void poll();
  bool completed(std::uint64_t id) const { return done_.count(id) != 0; }
  const rpc::Completion& wait(std::uint64_t id);
  void wait_some();
  std::vector<rpc::Completion> take_completions();
  void drain();
  void close();

  /// Fabric-level requests not yet surfaced as completions.
  std::uint64_t outstanding() const;

  const FabricClientStats& stats() const { return stats_; }
  /// Link RPC stats summed over every link (credit stalls, retries, ...).
  rpc::ClientStats link_stats() const;
  const FabricConfig& fabric_config() const { return cfg_; }
  /// The per-link RPC config (loadgen drivers read flush_timeout here,
  /// mirroring RpcClient::config()).
  const rpc::RpcConfig& config() const { return cfg_.rpc; }
  mpi::Comm& comm() const { return *comm_; }
  const ShardMap& shard_map() const { return map_; }
  rpc::RpcClient& link(std::uint32_t i) { return *links_[i]; }
  std::uint32_t nlinks() const {
    return static_cast<std::uint32_t>(links_.size());
  }
  /// Latency of Ok fabric completions, nanosecond units.
  const LogHistogram& latency() const { return lat_; }

  /// Health-monitor verdict for link `i` (always Healthy when the
  /// monitor is disarmed, i.e. cfg.fail_after == 0).
  LinkHealth link_health(std::uint32_t i) const {
    return health_.empty() ? LinkHealth::Healthy : health_[i];
  }
  /// Virtual time from the first server death to the first Ok completion
  /// after it (0 until both happened) — the recovery-time probe the
  /// failover bench asserts on.
  TimePs recovery_time() const { return recovery_ps_; }

 private:
  struct SubKey {
    std::uint64_t fabric_id = 0;
    std::uint16_t seg_index = 0;
    bool striped = false;
    bool probe = false;  // re-admission probe, not application work
  };
  /// Passthrough retry state, kept only while the health monitor is
  /// armed: everything needed to re-issue the request on a survivor.
  struct PendingReq {
    std::vector<std::uint8_t> payload;
    std::uint32_t response_cap = 0;
    rpc::Class cls = rpc::Class::Latency;
    std::uint32_t tenant = 0;
    std::uint32_t attempts = 1;
    TimePs t0 = 0;
  };
  struct Stripe {
    std::uint32_t total = 0;
    std::uint32_t seg_bytes = 0;
    std::uint16_t seg_count = 0;
    std::uint16_t remaining = 0;
    std::uint32_t tenant = 0;
    rpc::Class cls = rpc::Class::Latency;
    VirtAddr buf = 0;  // Role::StripeSegment reassembly buffer
    TimePs t0 = 0;
    rpc::Status status = rpc::Status::Ok;
    std::uint64_t trace = 0;  // fabric-level request-trace id (0 = off)
    /// Per-segment issue counts (failover armed only; empty otherwise).
    std::vector<std::uint32_t> attempts;
  };

  /// Non-blocking: poll every link, route arrived sub-completions.
  void pump();
  void route(std::uint32_t link, rpc::Completion&& c);
  void finalize(std::uint64_t fid, Stripe& st);
  /// Block until any link's posted response completes.
  void block_any();
  /// One blocking step. With a single link this delegates to the link's
  /// own wait_some so the virtual-time op sequence is bit-identical to a
  /// bare RpcClient (the golden-equivalence contract); with several it
  /// force-flushes all links and waits for any response.
  void block_step();
  std::uint64_t submit_striped(std::uint32_t response_cap, rpc::Class cls,
                               std::uint32_t tenant);
  std::uint32_t pick_link(std::uint32_t start, std::uint32_t rotation,
                          std::uint32_t width);
  std::uint32_t plan_segment_bytes(std::uint32_t total,
                                   std::uint32_t width) const;
  void emit(rpc::Completion&& c);
  void register_metrics();

  // --- failure recovery (no-ops unless cfg_.fail_after > 0) ---
  bool failover_armed() const { return cfg_.fail_after > 0; }
  bool degraded() const;
  /// A link answered (anything but TimedOut): reset its loss streak.
  void note_link_alive(std::uint32_t link);
  /// A sub-request on `link` timed out: advance the health state machine
  /// and queue the work for re-issue on a survivor.
  void on_timeout(std::uint32_t link, const SubKey& key);
  void on_probe(std::uint32_t link, rpc::Status status);
  void declare_dead(std::uint32_t link);
  /// Re-issue queued-for-reroute work and due re-admission probes.
  /// Non-blocking; a survivor refusing the submit leaves it queued.
  void pump_failover();
  /// Returns false when the survivor's queue refused the re-submit (the
  /// work stays queued for the next pump).
  bool reroute_passthrough(std::uint64_t fid);
  bool reroute_segment(std::uint64_t fid, std::uint16_t seg_index);
  /// Blocking step while armed: flush every link and sleep until a
  /// response arrival, transport event, link timeout deadline or due
  /// probe — whichever is earliest — then pump. Never blocks inside the
  /// transport, so timeouts fire even against a dead server.
  void failover_block();

  mpi::Comm* comm_;
  std::vector<int> servers_;
  FabricConfig cfg_;
  /// Per-request tracing hub (null = tracing disabled, bit-inert).
  telemetry::RequestTracer* hub_ = nullptr;
  ShardMap map_;
  std::vector<std::unique_ptr<rpc::RpcClient>> links_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, SubKey> sub_;  // by
                                                                   // (link,
                                                                   // rpc id)
  std::map<std::uint64_t, Stripe> stripes_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, rpc::Completion> done_;
  std::deque<const rpc::Completion*> fresh_;
  FabricClientStats stats_;
  LogHistogram lat_;
  std::vector<telemetry::ProbeHandle> probes_;
  bool closed_ = false;

  // --- health monitor (sized only when cfg_.fail_after > 0) ---
  std::vector<LinkHealth> health_;
  std::vector<std::uint32_t> losses_;      // consecutive TimedOut streak
  std::vector<TimePs> next_probe_;         // 0 = no probe scheduled
  std::vector<TimePs> probe_backoff_;      // current per-link backoff
  std::map<std::uint64_t, PendingReq> pending_;  // fid -> retry state
  std::deque<std::uint64_t> retry_pass_;   // passthrough fids to re-issue
  std::deque<std::pair<std::uint64_t, std::uint16_t>> retry_seg_;
  bool probes_muted_ = false;  // drain(): stop re-arming probes
  TimePs death_t_ = 0;
  bool recovered_ = true;
  TimePs recovery_ps_ = 0;
};

// ---------------------------------------------------------------------------
// FabricServer

/// One shard of the fleet: an RpcServer whose handler answers stripe
/// sub-requests from a resident Role::RpcShard arena and delegates
/// everything else to the application handler (default: echo). Congestion
/// signals (queue depth, stripe counters, shard traffic) export as
/// fabric.* probes.
class FabricServer {
 public:
  FabricServer(mpi::Comm& comm, std::vector<int> clients,
               FabricConfig cfg = {}, rpc::Handler app = {});
  ~FabricServer();

  void serve() { server_->serve(); }

  const rpc::ServerStats& stats() const { return server_->stats(); }
  const FabricConfig& fabric_config() const { return cfg_; }
  std::uint64_t striped_segments() const { return striped_segments_; }
  std::uint64_t shard_bytes_read() const { return shard_bytes_read_; }

 private:
  std::uint32_t serve_stripe(const rpc::RequestView& rq, std::uint8_t* out,
                             std::uint32_t cap);
  void ensure_shard();
  void register_metrics();

  mpi::Comm* comm_;
  FabricConfig cfg_;
  rpc::Handler app_;
  std::unique_ptr<rpc::RpcServer> server_;
  VirtAddr shard_ = 0;  // lazy Role::RpcShard arena
  std::uint64_t striped_segments_ = 0;
  std::uint64_t shard_bytes_read_ = 0;
  std::vector<telemetry::ProbeHandle> probes_;
};

}  // namespace ibp::fabric
